package tasks

// Sharded Active Disk execution (-procmode parallel): each disk's
// media, embedded CPU and scratch live on their own shard kernel
// running the event-driven fast path on a separate core; the loops,
// front-end, stream endpoints (receive-buffer credits, inboxes) and
// coordination primitives live on the hub. A disklet's shared touches —
// SendToFrontEnd, Send, Recv, Release, barrier waits, WaitGroup.Done —
// are wrapped in Shard.Call, which executes them on the hub at the same
// virtual time the inline call would have, so the sharded run is
// byte-equivalent to the single-kernel event run.
//
// The hub-and-spoke tasks (select, aggregate, group-by, datacube) cross
// to the hub only to flush results. The communication-heavy tasks sort
// and join also shard: their all-to-all repartition streams, phase
// barriers and credit releases ride the same Call channel, whose
// per-edge horizon protocol (shard.go) lets every leaf keep multiple
// calls in flight while its disklets' local events — and the other
// leaves' — run concurrently. Mine and mview (front-end broadcast
// reductions) keep the single-kernel path under -procmode parallel;
// they execute in event mode, trivially byte-identical.
//
// Fault plans shard cleanly: injection is a pure function of the
// per-disk request sequence, straggler windows stretch only the shard's
// own CPU, and loss accounting stays proc-local until the disklet's
// final hub crossing. The one structural exception is replica failover
// (replica + fail): the scan then reads a peer disk that lives on a
// different shard, so those plans — and the spare rebuild they enable —
// stay on the single-kernel path.

import (
	"fmt"

	"howsim/internal/arch"
	"howsim/internal/cpu"
	"howsim/internal/disk"
	"howsim/internal/diskos"
	"howsim/internal/fault"
	"howsim/internal/probe"
	"howsim/internal/relational"
	"howsim/internal/sim"
	"howsim/internal/workload"
)

// shardable reports whether a run can execute on a ShardGroup: an
// Active Disk configuration, a task whose cross-disk traffic fits the
// Call channel, and no replica failover in the plan (failing over reads
// a peer shard's disk directly, bypassing the hub-owned stream
// endpoints).
func shardable(cfg arch.Config, task workload.TaskID, plan *fault.Plan) bool {
	if cfg.Kind != arch.KindActiveDisk {
		return false
	}
	if plan != nil && plan.Replica && plan.FailDisk >= 0 {
		return false
	}
	switch task {
	case workload.Select, workload.Aggregate, workload.GroupBy, workload.DataCube,
		workload.Sort, workload.Join:
		return true
	}
	return false
}

// runActiveSharded executes one shardable task partitioned across a
// ShardGroup, producing the same Result a single-kernel event run
// would.
func runActiveSharded(cfg arch.Config, task workload.TaskID, ds workload.Dataset, res *Result,
	plan *fault.Plan, sink *probe.Sink) {
	g := sim.NewShardGroup(cfg.Disks)
	defer g.Close()
	g.Hub().SetProbe(sink)
	// Each kernel records into its own sink (sinks are single-threaded);
	// the leaves' recordings are merged into the hub's after the run.
	var leafSinks []*probe.Sink
	if sink != nil {
		leafSinks = make([]*probe.Sink, cfg.Disks)
		for i := range leafSinks {
			ls := probe.NewSinkCap(sink.RingCap())
			ls.SetEnabled(sink.Enabled())
			leafSinks[i] = ls
			g.Shard(i).Kernel().SetProbe(ls)
		}
	}
	s := cfg.BuildActiveSharded(g)
	s.InstallFaults(plan)
	deg := &degrade{}
	var done *sim.Signal
	switch task {
	case workload.Select:
		done = shardScan(g, s, ds, SelectCycles,
			func(n int64) int64 { return int64(float64(n) * ds.Selectivity) }, 0, plan, deg)
	case workload.Aggregate:
		done = shardScan(g, s, ds, AggregateCycles, func(int64) int64 { return 0 }, 512, plan, deg)
	case workload.GroupBy:
		done = shardGroupBy(g, s, ds, res)
	case workload.DataCube:
		done = shardCube(g, s, ds, res)
	case workload.Sort:
		done = shardSort(g, s, ds, res)
	case workload.Join:
		done = shardJoin(g, s, ds, res)
	default:
		panic(fmt.Sprintf("tasks: task %v is not shardable", task))
	}
	res.Elapsed = g.Run()
	completed := done.Fired()
	if !completed && plan == nil {
		panic(fmt.Sprintf("tasks: %v on %s stalled at %v\n%s\n%s",
			task, cfg.Name(), res.Elapsed, g.Stall(), g.DeadlockReport()))
	}
	res.Details["loop_bytes"] = float64(s.LoopBytesMoved())
	res.Details["loop_util"] = s.LoopUtilization()
	res.Details["loops"] = float64(s.Loops())
	res.Details["fe_recv_bytes"] = float64(s.FE.ReceivedBytes())
	res.Details["fe_relay_bytes"] = float64(s.FE.RelayedBytes())
	var mediaRead, mediaWrite int64
	disks := make([]*disk.Disk, len(s.Disks))
	cpus := make([]*cpu.CPU, len(s.Disks))
	for i, ad := range s.Disks {
		st := ad.Disk.Stats()
		mediaRead += st.BytesRead
		mediaWrite += st.BytesWritten
		disks[i] = ad.Disk
		cpus[i] = ad.CPU
	}
	res.Details["media_read_bytes"] = float64(mediaRead)
	res.Details["media_write_bytes"] = float64(mediaWrite)
	var deadlock string
	if !completed {
		deadlock = g.DeadlockReport()
	}
	faultEpilogue(res, plan, deg, completed, deadlock, disks, cpus, nil)
	for _, ls := range leafSinks {
		sink.Merge(ls)
	}
	probeEpilogue(res, g.Hub())
}

// shardScan is activeScan partitioned: the scan loop (media read,
// embedded compute) runs on each disk's shard; every front-end flush —
// and the final flush plus completion mark — crosses to the hub through
// one Call each, at the exact virtual times the single-kernel disklet
// would have touched the loop.
//
// Faults are handled exactly as activeScan does for non-replica plans:
// a hard media error loses just that chunk, a failed drive abandons the
// remainder. Lost bytes accumulate in a proc-local counter and fold
// into the degrade accumulator inside the disklet's final hub Call, so
// the shared struct is only touched on the hub and no extra events are
// introduced.
func shardScan(g *sim.ShardGroup, s *diskos.System, ds workload.Dataset,
	cycles int64, emit func(chunkBytes int64) int64, finalBytes int64,
	plan *fault.Plan, deg *degrade) *sim.Signal {
	d := len(s.Disks)
	per := perNodeBytes(ds.TotalBytes, d)
	deg.total = per * int64(d)
	done := sim.NewSignal()
	wg := sim.NewWaitGroup(d)
	for i := range s.Disks {
		i := i
		sh := g.Shard(i)
		// Per-shard recovery ref on the shard's own sink (sinks are
		// single-threaded); registered only under a plan so fault-free
		// traces stay byte-identical.
		var skipRef probe.Ref
		var skipKind probe.Kind
		if plan != nil {
			skipRef = sh.Kernel().Probe().Register("recovery", "scan")
			skipKind = skipRef.KindNamed("degraded_skip")
		}
		sh.Kernel().Spawn(fmt.Sprintf("scan%d", i), func(p *sim.Proc) {
			src := s.Disks[i]
			var pend, lost int64
			for off := int64(0); off < per; {
				n := int64(ioChunk)
				if per-off < n {
					n = alignSector(per - off)
				}
				err := src.ReadLocal(p, off, n)
				if err == disk.ErrDiskFailed {
					lost += per - off
					if skipRef.On() {
						skipRef.SpanArg(skipKind, int64(p.Now()), int64(p.Now()), per-off)
					}
					break
				}
				if err != nil {
					// Unrecoverable sector: this chunk is lost, the scan
					// continues.
					lost += n
					if skipRef.On() {
						skipRef.SpanArg(skipKind, int64(p.Now()), int64(p.Now()), n)
					}
				} else {
					t := tuplesIn(n, ds.TupleBytes)
					src.Compute(p, t*cycles)
					pend += emit(n)
					if pend >= flushBatch {
						b := pend
						sh.Call(p, func(hp *sim.Proc) { src.SendToFrontEnd(hp, b, nil) })
						pend = 0
					}
				}
				off += n
			}
			// The tail flushes, loss accounting and the completion mark are
			// all hub work at one instant: a single Call keeps them at the
			// same event positions the inline sequence would occupy.
			b, l := pend, lost
			sh.Call(p, func(hp *sim.Proc) {
				if b > 0 {
					src.SendToFrontEnd(hp, b, nil)
				}
				if finalBytes > 0 {
					src.SendToFrontEnd(hp, finalBytes, nil)
				}
				deg.lost += l
				wg.Done()
			})
		})
	}
	g.Hub().Spawn("coord", func(p *sim.Proc) {
		wg.Wait(p)
		done.Fire()
	})
	return done
}

// shardGroupBy is activeGroupBy partitioned: local hash aggregation on
// each shard, partial-result forwarding and the front-end merge on the
// hub.
func shardGroupBy(g *sim.ShardGroup, s *diskos.System, ds workload.Dataset, res *Result) *sim.Signal {
	d := len(s.Disks)
	per := perNodeBytes(ds.TotalBytes, d)
	result := ds.DistinctGroups * GroupResultTupleBytes
	fwd := result * GroupDedupFactor / int64(d)
	res.Details["fwd_bytes_per_disk"] = float64(fwd)
	ratio := float64(fwd) / float64(per)

	done := sim.NewSignal()
	wg := sim.NewWaitGroup(d)
	merged := feMerger(g.Hub(), s, GroupResultTupleBytes, GroupMergeCycles)
	for i := range s.Disks {
		ad := s.Disks[i]
		sh := g.Shard(i)
		sh.Kernel().Spawn(fmt.Sprintf("gby%d", i), func(p *sim.Proc) {
			var pend float64
			chunksOf(per, func(off, n int64) {
				ad.ReadLocal(p, off, n)
				t := tuplesIn(n, ds.TupleBytes)
				ad.Compute(p, t*GroupByCycles)
				pend += float64(n) * ratio
				if pend >= flushBatch {
					b := int64(pend)
					sh.Call(p, func(hp *sim.Proc) { ad.SendToFrontEnd(hp, b, nil) })
					pend = 0
				}
			})
			b := int64(pend)
			sh.Call(p, func(hp *sim.Proc) {
				if pend >= 1 {
					ad.SendToFrontEnd(hp, b, nil)
				}
				wg.Done()
			})
		})
	}
	g.Hub().Spawn("coord", func(p *sim.Proc) {
		wg.Wait(p)
		s.FE.Inbox().Close()
		merged.Wait(p)
		done.Fire()
	})
	return done
}

// shardCube is activeCube partitioned: every pass reads and writes the
// shard's own media; only spill forwarding (and the completion mark)
// crosses to the hub.
func shardCube(g *sim.ShardGroup, s *diskos.System, ds workload.Dataset, res *Result) *sim.Signal {
	d := len(s.Disks)
	per := perNodeBytes(ds.TotalBytes, d)
	shape := relational.PaperCubeShape()
	if ds.TotalBytes < workload.ForTask(workload.DataCube).TotalBytes {
		f := float64(ds.TotalBytes) / float64(workload.ForTask(workload.DataCube).TotalBytes)
		shape.LargestTableBytes = int64(float64(shape.LargestTableBytes) * f)
		for i := range shape.OtherTablesBytes {
			shape.OtherTablesBytes[i] = int64(float64(shape.OtherTablesBytes[i]) * f)
		}
	}
	reserve := s.Cfg.DiskMemBytes - s.ScratchBytes() + 1<<20
	plan := shape.Plan(d, s.Cfg.DiskMemBytes, reserve)
	res.Details["passes"] = float64(plan.Passes)
	res.Details["spill_bytes"] = float64(plan.SpillBytes)

	interRegion := alignSector(s.Disks[0].Disk.Capacity() / 3)
	tableRegion := alignSector(2 * s.Disks[0].Disk.Capacity() / 3)
	interBytes := alignSector(int64(float64(per) * CubeIntermediateFraction))
	var tables int64 = shape.LargestTableBytes
	for _, t := range shape.OtherTablesBytes {
		tables += t
	}
	tablesPer := alignSector(tables / int64(d))

	done := sim.NewSignal()
	wg := sim.NewWaitGroup(d)
	var merged *sim.Signal
	if plan.SpillBytes > 0 {
		merged = feMerger(g.Hub(), s, 32, GroupMergeCycles)
	}
	for i := range s.Disks {
		ad := s.Disks[i]
		sh := g.Shard(i)
		sh.Kernel().Spawn(fmt.Sprintf("cube%d", i), func(p *sim.Proc) {
			spillShare := plan.SpillBytes / int64(d)
			spillRatio := float64(spillShare) / float64(per)
			var pend float64
			var interWritten int64
			chunksOf(per, func(off, n int64) {
				ad.ReadLocal(p, off, n)
				t := tuplesIn(n, ds.TupleBytes)
				ad.Compute(p, t*CubeCycles)
				if spillShare > 0 {
					pend += float64(n) * spillRatio
					if pend >= flushBatch {
						b := int64(pend)
						sh.Call(p, func(hp *sim.Proc) { ad.SendToFrontEnd(hp, b, nil) })
						pend = 0
					}
				}
				if interWritten < interBytes {
					w := n
					if interBytes-interWritten < w {
						w = alignSector(interBytes - interWritten)
					}
					ad.WriteLocal(p, interRegion+interWritten, w)
					interWritten += w
				}
			})
			if pend >= 1 {
				b := int64(pend)
				sh.Call(p, func(hp *sim.Proc) { ad.SendToFrontEnd(hp, b, nil) })
			}
			for pass := 1; pass < plan.Passes; pass++ {
				chunksOf(interBytes, func(off, n int64) {
					ad.ReadLocal(p, interRegion+off, n)
					t := tuplesIn(n, ds.TupleBytes)
					ad.Compute(p, t*CubeCycles)
				})
			}
			chunksOf(tablesPer, func(off, n int64) {
				ad.WriteLocal(p, tableRegion+off, n)
			})
			sh.Call(p, func(hp *sim.Proc) { wg.Done() })
		})
	}
	g.Hub().Spawn("coord", func(p *sim.Proc) {
		wg.Wait(p)
		s.FE.Inbox().Close()
		if merged != nil {
			merged.Wait(p)
		}
		done.Fire()
	})
	return done
}

// shardSort is activeSort partitioned: scanning, run formation, run
// writes and the phase-2 merge run on each disk's shard; every stream
// operation (Send, Recv, Release), the phase barrier and the completion
// marks cross to the hub through Shard.Call at the exact virtual times
// the single-kernel disklets would have touched the loop. The CPU
// breakdown counters accumulate shard-locally and fold into the shared
// totals inside hub Calls, so the shared variables are only touched on
// the hub.
func shardSort(g *sim.ShardGroup, s *diskos.System, ds workload.Dataset, res *Result) *sim.Signal {
	d := len(s.Disks)
	per := perNodeBytes(ds.TotalBytes, d)
	capEach := s.Disks[0].Disk.Capacity()
	runRegion := alignSector(capEach / 3)
	outRegion := alignSector(2 * capEach / 3)

	runBytes := alignSector(s.ScratchBytes() - 3<<20)
	if runBytes < 1<<20 {
		runBytes = 1 << 20
	}
	if runBytes > per {
		runBytes = alignSector(per)
	}
	plan := relational.PlanExternalSort(per, runBytes, 0)
	res.Details["runs"] = float64(plan.Runs)
	res.Details["run_bytes"] = float64(runBytes)

	hz := s.Disks[0].CPU.Hz()
	var cPart, cAppend, cSort, cMerge int64 // hub-only: folded inside Calls
	var p1End sim.Time

	type runState struct {
		fill     int64
		runSizes []int64
		mu       *sim.Mutex // partitioner and sorter disklets share the run buffer
		cAppend  int64      // shard-local until the sorter's final fold
		cSort    int64
	}
	states := make([]*runState, d)
	for i := range states {
		states[i] = &runState{mu: sim.NewMutex(g.Shard(i).Kernel(), fmt.Sprintf("run%d", i))}
	}

	// absorb accumulates arriving bytes into the current run, sorting
	// and writing whenever the run buffer fills — all on the disk's own
	// shard (both disklets of a disk live on the same kernel).
	absorb := func(p *sim.Proc, i int, bytes int64) {
		ad := s.Disks[i]
		st := states[i]
		st.mu.Lock(p)
		defer st.mu.Unlock()
		t := tuplesIn(bytes, ds.TupleBytes)
		ad.Compute(p, t*AppendCycles)
		st.cAppend += t * AppendCycles
		st.fill += bytes
		for st.fill >= runBytes {
			rt := tuplesIn(runBytes, ds.TupleBytes)
			ad.Compute(p, rt*RunSortCycles)
			st.cSort += rt * RunSortCycles
			var written int64
			for _, r := range st.runSizes {
				written += r
			}
			ad.WriteLocal(p, runRegion+written, runBytes)
			st.runSizes = append(st.runSizes, runBytes)
			st.fill -= runBytes
		}
	}

	barrier := sim.NewBarrier(g.Hub(), "sort.p1", d)
	readers := sim.NewWaitGroup(d)
	sorters := sim.NewWaitGroup(d)
	done := sim.NewSignal()

	for i := range s.Disks {
		i := i
		ad := s.Disks[i]
		sh := g.Shard(i)
		peers := make([]int, 0, d-1)
		for j := 0; j < d; j++ {
			if j != i {
				peers = append(peers, j)
			}
		}
		// Partitioner disklet: scan local input, keep the local share,
		// stream the rest to peer disks in rotating batches.
		sh.Kernel().Spawn(fmt.Sprintf("part%d", i), func(p *sim.Proc) {
			var local int64
			rot := 0
			chunksOf(per, func(off, n int64) {
				ad.ReadLocal(p, off, n)
				t := tuplesIn(n, ds.TupleBytes)
				ad.Compute(p, t*PartitionCycles)
				local += t * PartitionCycles
				remote := n * int64(d-1) / int64(d)
				if remote > 0 && len(peers) > 0 {
					dst := peers[rot]
					sh.Call(p, func(hp *sim.Proc) { ad.Send(hp, dst, remote, nil) })
					rot = (rot + 1) % len(peers)
				}
				absorb(p, i, n-remote)
			})
			c := local
			sh.Call(p, func(hp *sim.Proc) {
				cPart += c
				readers.Done()
			})
		})
		// Sorter disklet: absorb arriving tuples into runs, then merge.
		// The previous chunk's credit release rides the next Recv Call —
		// the two are adjacent same-instant hub touches in the
		// single-kernel run.
		sh.Kernel().Spawn(fmt.Sprintf("sort%d", i), func(p *sim.Proc) {
			var c diskos.Chunk
			var ok bool
			rel := int64(0)
			for {
				r := rel
				sh.Call(p, func(hp *sim.Proc) {
					if r > 0 {
						ad.Release(r)
					}
					c, ok = ad.Recv(hp)
				})
				if !ok {
					break
				}
				absorb(p, i, c.Bytes)
				rel = c.Bytes
			}
			st := states[i]
			if st.fill > 0 {
				t := tuplesIn(st.fill, ds.TupleBytes)
				ad.Compute(p, t*RunSortCycles)
				st.cSort += t * RunSortCycles
				var written int64
				for _, r := range st.runSizes {
					written += r
				}
				sz := alignSector(st.fill)
				ad.WriteLocal(p, runRegion+written, sz)
				st.runSizes = append(st.runSizes, sz)
				st.fill = 0
			}
			sh.Call(p, func(hp *sim.Proc) {
				barrier.Wait(hp)
				if i == 0 {
					p1End = hp.Now()
				}
			})
			var mergeC int64
			activeMerge(p, ad, st.runSizes, runRegion, outRegion, ds.TupleBytes, &mergeC)
			ca, cs, m := st.cAppend, st.cSort, mergeC
			sh.Call(p, func(hp *sim.Proc) {
				cAppend += ca
				cSort += cs
				cMerge += m
				sorters.Done()
			})
		})
	}
	// Close inboxes once every partitioner has finished sending.
	g.Hub().Spawn("closer", func(p *sim.Proc) {
		readers.Wait(p)
		for _, ad := range s.Disks {
			ad.CloseInbox()
		}
	})
	g.Hub().Spawn("coord", func(p *sim.Proc) {
		sorters.Wait(p)
		// Attribute CPU buckets (average per disk) and idle remainders,
		// matching Figure 3's legend.
		total := p.Now()
		toTime := func(cycles int64) sim.Time {
			return sim.Time(float64(cycles) / hz / float64(d) * float64(sim.Second))
		}
		bd := res.Breakdown
		bd.Add("P1:Partitioner", toTime(cPart))
		bd.Add("P1:Append", toTime(cAppend))
		bd.Add("P1:Sort", toTime(cSort))
		p1CPU := toTime(cPart + cAppend + cSort)
		if p1End > p1CPU {
			bd.Add("P1:Idle", p1End-p1CPU)
		}
		bd.Add("P2:Merge", toTime(cMerge))
		p2 := total - p1End
		if p2 > toTime(cMerge) {
			bd.Add("P2:Idle", p2-toTime(cMerge))
		}
		res.Details["p1_seconds"] = p1End.Seconds()
		res.Details["p2_seconds"] = (total - p1End).Seconds()
		done.Fire()
	})
	return done
}

// shardJoin is activeJoin partitioned: both relations are scanned,
// projected and hash-repartitioned from each disk's shard (the shuffle
// streams and phase barriers crossing through Shard.Call), then each
// shard joins its partitions locally and writes the output without
// touching the hub again until the completion mark.
func shardJoin(g *sim.ShardGroup, s *diskos.System, ds workload.Dataset, res *Result) *sim.Signal {
	d := len(s.Disks)
	rBytes := ds.TotalBytes / 2
	sBytes := ds.TotalBytes - rBytes
	perR := perNodeBytes(rBytes, d)
	perS := perNodeBytes(sBytes, d)
	projFrac := float64(ds.ProjectedTupleBytes) / float64(ds.TupleBytes)
	partRegion := alignSector(s.Disks[0].Disk.Capacity() / 3)
	outRegion := alignSector(2 * s.Disks[0].Disk.Capacity() / 3)

	projR := alignSector(int64(float64(perR) * projFrac))
	projS := alignSector(int64(float64(perS) * projFrac))
	gp := relational.PlanGraceJoin(projR, s.ScratchBytes()-2<<20)
	res.Details["grace_partitions"] = float64(gp.Partitions)

	done := sim.NewSignal()
	var phase [2]*sim.Barrier
	phase[0] = sim.NewBarrier(g.Hub(), "join.p1", d)
	phase[1] = sim.NewBarrier(g.Hub(), "join.p2", d)
	readersR := sim.NewWaitGroup(d)
	readersS := sim.NewWaitGroup(d)
	workers := sim.NewWaitGroup(d)

	for i := range s.Disks {
		i := i
		ad := s.Disks[i]
		sh := g.Shard(i)
		peers := make([]int, 0, d-1)
		for j := 0; j < d; j++ {
			if j != i {
				peers = append(peers, j)
			}
		}
		// shuffle scans a local relation partition, projects it and
		// streams the remote share to peers (each Send one hub Call).
		shuffle := func(p *sim.Proc, per int64) {
			rot := 0
			chunksOf(per, func(off, n int64) {
				ad.ReadLocal(p, off, n)
				t := tuplesIn(n, ds.TupleBytes)
				ad.Compute(p, t*ProjectCycles)
				proj := int64(float64(n) * projFrac)
				remote := proj * int64(d-1) / int64(d)
				if remote > 0 && len(peers) > 0 {
					dst := peers[rot]
					sh.Call(p, func(hp *sim.Proc) { ad.Send(hp, dst, remote, nil) })
					rot = (rot + 1) % len(peers)
				}
			})
		}
		// Scanner disklet: project+shuffle R, barrier, then S.
		sh.Kernel().Spawn(fmt.Sprintf("jscan%d", i), func(p *sim.Proc) {
			shuffle(p, perR)
			sh.Call(p, func(hp *sim.Proc) {
				readersR.Done()
				phase[0].Wait(hp)
				if i == 0 {
					res.Details["p1_seconds"] = hp.Now().Seconds()
				}
			})
			shuffle(p, perS)
			sh.Call(p, func(hp *sim.Proc) { readersS.Done() })
		})
		// Writer disklet: receive projected tuples, write the partition
		// files, then build+probe each Grace partition. The credit
		// release is its own Call: the single-kernel disklet releases
		// after the append compute but before the (possible) partition
		// write.
		sh.Kernel().Spawn(fmt.Sprintf("jwork%d", i), func(p *sim.Proc) {
			var pend, written int64
			flush := func(final bool) {
				if pend >= flushBatch || (final && pend > 0) {
					w := alignSector(pend)
					ad.WriteLocal(p, partRegion+written, w)
					written += w
					pend = 0
				}
			}
			for {
				var c diskos.Chunk
				var ok bool
				sh.Call(p, func(hp *sim.Proc) { c, ok = ad.Recv(hp) })
				if !ok {
					break
				}
				t := tuplesIn(c.Bytes, ds.ProjectedTupleBytes)
				ad.Compute(p, t*AppendCycles/4)
				pend += c.Bytes
				rel := c.Bytes
				sh.Call(p, func(hp *sim.Proc) { ad.Release(rel) })
				flush(false)
			}
			// Locally retained projected share of both relations.
			local := (projR + projS) / int64(d)
			pend += local
			flush(true)
			sh.Call(p, func(hp *sim.Proc) {
				phase[1].Wait(hp)
				if i == 0 {
					res.Details["p2_seconds"] = hp.Now().Seconds() - res.Details["p1_seconds"]
				}
			})

			// Local Grace join over the received partitions.
			totalPart := written
			rShare := totalPart * projR / (projR + projS)
			sShare := totalPart - rShare
			chunksOf(rShare, func(off, n int64) {
				ad.ReadLocal(p, partRegion+off, n)
				t := tuplesIn(n, ds.ProjectedTupleBytes)
				ad.Compute(p, t*BuildCycles)
			})
			var outOff int64
			chunksOf(sShare, func(off, n int64) {
				ad.ReadLocal(p, partRegion+rShare+off, n)
				t := tuplesIn(n, ds.ProjectedTupleBytes)
				ad.Compute(p, t*ProbeCycles)
				out := int64(float64(n) * JoinOutputFraction)
				if out > 0 {
					ad.WriteLocal(p, outRegion+outOff, alignSector(out))
					outOff += alignSector(out)
				}
			})
			sh.Call(p, func(hp *sim.Proc) { workers.Done() })
		})
	}
	g.Hub().Spawn("closer", func(p *sim.Proc) {
		readersR.Wait(p)
		readersS.Wait(p)
		for _, ad := range s.Disks {
			ad.CloseInbox()
		}
	})
	g.Hub().Spawn("coord", func(p *sim.Proc) {
		workers.Wait(p)
		done.Fire()
	})
	return done
}
