package tasks

// Sharded Active Disk execution (-procmode parallel): the hub-and-spoke
// tasks — select, aggregate, group-by and datacube — partition cleanly
// at per-disk boundaries. Each disk's media, embedded CPU and buffers
// live on their own shard kernel running the event-driven fast path on
// a separate core; the loops, front-end and coordination primitives
// live on the hub. A disklet's only shared touches (SendToFrontEnd,
// WaitGroup.Done) are wrapped in Shard.Call, which executes them on the
// hub at the same virtual time the inline call would have — so the
// sharded run is byte-equivalent to the single-kernel event run.
//
// Tasks with cross-disk traffic (sort, join, mine, mview: Send/Recv
// streams, barriers, front-end broadcasts) keep the single-kernel path
// under -procmode parallel; they execute in event mode, trivially
// byte-identical.
//
// Fault plans shard cleanly: injection is a pure function of the
// per-disk request sequence, straggler windows stretch only the shard's
// own CPU, and loss accounting stays proc-local until the disklet's
// final hub crossing. The one structural exception is replica failover
// (replica + fail): the scan then reads a peer disk that lives on a
// different shard, so those plans — and the spare rebuild they enable —
// stay on the single-kernel path.

import (
	"fmt"

	"howsim/internal/arch"
	"howsim/internal/cpu"
	"howsim/internal/disk"
	"howsim/internal/diskos"
	"howsim/internal/fault"
	"howsim/internal/probe"
	"howsim/internal/relational"
	"howsim/internal/sim"
	"howsim/internal/workload"
)

// shardable reports whether a run can execute on a ShardGroup: an
// Active Disk configuration, a hub-and-spoke task, and no replica
// failover in the plan (failing over reads a peer shard's disk, which
// would break the one-disklet-per-shard frozen-leaf invariant).
func shardable(cfg arch.Config, task workload.TaskID, plan *fault.Plan) bool {
	if cfg.Kind != arch.KindActiveDisk {
		return false
	}
	if plan != nil && plan.Replica && plan.FailDisk >= 0 {
		return false
	}
	switch task {
	case workload.Select, workload.Aggregate, workload.GroupBy, workload.DataCube:
		return true
	}
	return false
}

// runActiveSharded executes one shardable task partitioned across a
// ShardGroup, producing the same Result a single-kernel event run
// would.
func runActiveSharded(cfg arch.Config, task workload.TaskID, ds workload.Dataset, res *Result,
	plan *fault.Plan, sink *probe.Sink) {
	g := sim.NewShardGroup(cfg.Disks)
	defer g.Close()
	g.Hub().SetProbe(sink)
	// Each kernel records into its own sink (sinks are single-threaded);
	// the leaves' recordings are merged into the hub's after the run.
	var leafSinks []*probe.Sink
	if sink != nil {
		leafSinks = make([]*probe.Sink, cfg.Disks)
		for i := range leafSinks {
			ls := probe.NewSinkCap(sink.RingCap())
			ls.SetEnabled(sink.Enabled())
			leafSinks[i] = ls
			g.Shard(i).Kernel().SetProbe(ls)
		}
	}
	s := cfg.BuildActiveSharded(g)
	s.InstallFaults(plan)
	deg := &degrade{}
	var done *sim.Signal
	switch task {
	case workload.Select:
		done = shardScan(g, s, ds, SelectCycles,
			func(n int64) int64 { return int64(float64(n) * ds.Selectivity) }, 0, plan, deg)
	case workload.Aggregate:
		done = shardScan(g, s, ds, AggregateCycles, func(int64) int64 { return 0 }, 512, plan, deg)
	case workload.GroupBy:
		done = shardGroupBy(g, s, ds, res)
	case workload.DataCube:
		done = shardCube(g, s, ds, res)
	default:
		panic(fmt.Sprintf("tasks: task %v is not shardable", task))
	}
	res.Elapsed = g.Run()
	completed := done.Fired()
	if !completed && plan == nil {
		panic(fmt.Sprintf("tasks: %v on %s stalled at %v\n%s\n%s",
			task, cfg.Name(), res.Elapsed, g.Stall(), g.DeadlockReport()))
	}
	res.Details["loop_bytes"] = float64(s.LoopBytesMoved())
	res.Details["loop_util"] = s.LoopUtilization()
	res.Details["loops"] = float64(s.Loops())
	res.Details["fe_recv_bytes"] = float64(s.FE.ReceivedBytes())
	res.Details["fe_relay_bytes"] = float64(s.FE.RelayedBytes())
	var mediaRead, mediaWrite int64
	disks := make([]*disk.Disk, len(s.Disks))
	cpus := make([]*cpu.CPU, len(s.Disks))
	for i, ad := range s.Disks {
		st := ad.Disk.Stats()
		mediaRead += st.BytesRead
		mediaWrite += st.BytesWritten
		disks[i] = ad.Disk
		cpus[i] = ad.CPU
	}
	res.Details["media_read_bytes"] = float64(mediaRead)
	res.Details["media_write_bytes"] = float64(mediaWrite)
	var deadlock string
	if !completed {
		deadlock = g.DeadlockReport()
	}
	faultEpilogue(res, plan, deg, completed, deadlock, disks, cpus, nil)
	for _, ls := range leafSinks {
		sink.Merge(ls)
	}
	probeEpilogue(res, g.Hub())
}

// shardScan is activeScan partitioned: the scan loop (media read,
// embedded compute) runs on each disk's shard; every front-end flush —
// and the final flush plus completion mark — crosses to the hub through
// one Call each, at the exact virtual times the single-kernel disklet
// would have touched the loop.
//
// Faults are handled exactly as activeScan does for non-replica plans:
// a hard media error loses just that chunk, a failed drive abandons the
// remainder. Lost bytes accumulate in a proc-local counter and fold
// into the degrade accumulator inside the disklet's final hub Call, so
// the shared struct is only touched on the hub and no extra events are
// introduced.
func shardScan(g *sim.ShardGroup, s *diskos.System, ds workload.Dataset,
	cycles int64, emit func(chunkBytes int64) int64, finalBytes int64,
	plan *fault.Plan, deg *degrade) *sim.Signal {
	d := len(s.Disks)
	per := perNodeBytes(ds.TotalBytes, d)
	deg.total = per * int64(d)
	done := sim.NewSignal()
	wg := sim.NewWaitGroup(d)
	for i := range s.Disks {
		i := i
		sh := g.Shard(i)
		// Per-shard recovery ref on the shard's own sink (sinks are
		// single-threaded); registered only under a plan so fault-free
		// traces stay byte-identical.
		var skipRef probe.Ref
		var skipKind probe.Kind
		if plan != nil {
			skipRef = sh.Kernel().Probe().Register("recovery", "scan")
			skipKind = skipRef.KindNamed("degraded_skip")
		}
		sh.Kernel().Spawn(fmt.Sprintf("scan%d", i), func(p *sim.Proc) {
			src := s.Disks[i]
			var pend, lost int64
			for off := int64(0); off < per; {
				n := int64(ioChunk)
				if per-off < n {
					n = alignSector(per - off)
				}
				err := src.ReadLocal(p, off, n)
				if err == disk.ErrDiskFailed {
					lost += per - off
					if skipRef.On() {
						skipRef.SpanArg(skipKind, int64(p.Now()), int64(p.Now()), per-off)
					}
					break
				}
				if err != nil {
					// Unrecoverable sector: this chunk is lost, the scan
					// continues.
					lost += n
					if skipRef.On() {
						skipRef.SpanArg(skipKind, int64(p.Now()), int64(p.Now()), n)
					}
				} else {
					t := tuplesIn(n, ds.TupleBytes)
					src.Compute(p, t*cycles)
					pend += emit(n)
					if pend >= flushBatch {
						b := pend
						sh.Call(p, func(hp *sim.Proc) { src.SendToFrontEnd(hp, b, nil) })
						pend = 0
					}
				}
				off += n
			}
			// The tail flushes, loss accounting and the completion mark are
			// all hub work at one instant: a single Call keeps them at the
			// same event positions the inline sequence would occupy.
			b, l := pend, lost
			sh.Call(p, func(hp *sim.Proc) {
				if b > 0 {
					src.SendToFrontEnd(hp, b, nil)
				}
				if finalBytes > 0 {
					src.SendToFrontEnd(hp, finalBytes, nil)
				}
				deg.lost += l
				wg.Done()
			})
		})
	}
	g.Hub().Spawn("coord", func(p *sim.Proc) {
		wg.Wait(p)
		done.Fire()
	})
	return done
}

// shardGroupBy is activeGroupBy partitioned: local hash aggregation on
// each shard, partial-result forwarding and the front-end merge on the
// hub.
func shardGroupBy(g *sim.ShardGroup, s *diskos.System, ds workload.Dataset, res *Result) *sim.Signal {
	d := len(s.Disks)
	per := perNodeBytes(ds.TotalBytes, d)
	result := ds.DistinctGroups * GroupResultTupleBytes
	fwd := result * GroupDedupFactor / int64(d)
	res.Details["fwd_bytes_per_disk"] = float64(fwd)
	ratio := float64(fwd) / float64(per)

	done := sim.NewSignal()
	wg := sim.NewWaitGroup(d)
	merged := feMerger(g.Hub(), s, GroupResultTupleBytes, GroupMergeCycles)
	for i := range s.Disks {
		ad := s.Disks[i]
		sh := g.Shard(i)
		sh.Kernel().Spawn(fmt.Sprintf("gby%d", i), func(p *sim.Proc) {
			var pend float64
			chunksOf(per, func(off, n int64) {
				ad.ReadLocal(p, off, n)
				t := tuplesIn(n, ds.TupleBytes)
				ad.Compute(p, t*GroupByCycles)
				pend += float64(n) * ratio
				if pend >= flushBatch {
					b := int64(pend)
					sh.Call(p, func(hp *sim.Proc) { ad.SendToFrontEnd(hp, b, nil) })
					pend = 0
				}
			})
			b := int64(pend)
			sh.Call(p, func(hp *sim.Proc) {
				if pend >= 1 {
					ad.SendToFrontEnd(hp, b, nil)
				}
				wg.Done()
			})
		})
	}
	g.Hub().Spawn("coord", func(p *sim.Proc) {
		wg.Wait(p)
		s.FE.Inbox().Close()
		merged.Wait(p)
		done.Fire()
	})
	return done
}

// shardCube is activeCube partitioned: every pass reads and writes the
// shard's own media; only spill forwarding (and the completion mark)
// crosses to the hub.
func shardCube(g *sim.ShardGroup, s *diskos.System, ds workload.Dataset, res *Result) *sim.Signal {
	d := len(s.Disks)
	per := perNodeBytes(ds.TotalBytes, d)
	shape := relational.PaperCubeShape()
	if ds.TotalBytes < workload.ForTask(workload.DataCube).TotalBytes {
		f := float64(ds.TotalBytes) / float64(workload.ForTask(workload.DataCube).TotalBytes)
		shape.LargestTableBytes = int64(float64(shape.LargestTableBytes) * f)
		for i := range shape.OtherTablesBytes {
			shape.OtherTablesBytes[i] = int64(float64(shape.OtherTablesBytes[i]) * f)
		}
	}
	reserve := s.Cfg.DiskMemBytes - s.ScratchBytes() + 1<<20
	plan := shape.Plan(d, s.Cfg.DiskMemBytes, reserve)
	res.Details["passes"] = float64(plan.Passes)
	res.Details["spill_bytes"] = float64(plan.SpillBytes)

	interRegion := alignSector(s.Disks[0].Disk.Capacity() / 3)
	tableRegion := alignSector(2 * s.Disks[0].Disk.Capacity() / 3)
	interBytes := alignSector(int64(float64(per) * CubeIntermediateFraction))
	var tables int64 = shape.LargestTableBytes
	for _, t := range shape.OtherTablesBytes {
		tables += t
	}
	tablesPer := alignSector(tables / int64(d))

	done := sim.NewSignal()
	wg := sim.NewWaitGroup(d)
	var merged *sim.Signal
	if plan.SpillBytes > 0 {
		merged = feMerger(g.Hub(), s, 32, GroupMergeCycles)
	}
	for i := range s.Disks {
		ad := s.Disks[i]
		sh := g.Shard(i)
		sh.Kernel().Spawn(fmt.Sprintf("cube%d", i), func(p *sim.Proc) {
			spillShare := plan.SpillBytes / int64(d)
			spillRatio := float64(spillShare) / float64(per)
			var pend float64
			var interWritten int64
			chunksOf(per, func(off, n int64) {
				ad.ReadLocal(p, off, n)
				t := tuplesIn(n, ds.TupleBytes)
				ad.Compute(p, t*CubeCycles)
				if spillShare > 0 {
					pend += float64(n) * spillRatio
					if pend >= flushBatch {
						b := int64(pend)
						sh.Call(p, func(hp *sim.Proc) { ad.SendToFrontEnd(hp, b, nil) })
						pend = 0
					}
				}
				if interWritten < interBytes {
					w := n
					if interBytes-interWritten < w {
						w = alignSector(interBytes - interWritten)
					}
					ad.WriteLocal(p, interRegion+interWritten, w)
					interWritten += w
				}
			})
			if pend >= 1 {
				b := int64(pend)
				sh.Call(p, func(hp *sim.Proc) { ad.SendToFrontEnd(hp, b, nil) })
			}
			for pass := 1; pass < plan.Passes; pass++ {
				chunksOf(interBytes, func(off, n int64) {
					ad.ReadLocal(p, interRegion+off, n)
					t := tuplesIn(n, ds.TupleBytes)
					ad.Compute(p, t*CubeCycles)
				})
			}
			chunksOf(tablesPer, func(off, n int64) {
				ad.WriteLocal(p, tableRegion+off, n)
			})
			sh.Call(p, func(hp *sim.Proc) { wg.Done() })
		})
	}
	g.Hub().Spawn("coord", func(p *sim.Proc) {
		wg.Wait(p)
		s.FE.Inbox().Close()
		if merged != nil {
			merged.Wait(p)
		}
		done.Fire()
	})
	return done
}
