package tasks

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"howsim/internal/arch"
	"howsim/internal/sim"
	"howsim/internal/workload"
)

// TestRunCtxMatchesPlainRun checks the sliced, cancellable execution
// path is event-for-event identical to the plain entry point: same
// elapsed virtual time, same details, on every architecture and in
// every single-kernel mode.
func TestRunCtxMatchesPlainRun(t *testing.T) {
	ds := scaled(workload.Sort, 48<<20)
	for _, cfg := range []arch.Config{arch.ActiveDisks(4), arch.Cluster(4), arch.SMP(4)} {
		for _, mode := range []sim.ExecMode{sim.ModeEvent, sim.ModeGoroutine} {
			// A context with a deadline takes the sliced path but never
			// actually cancels.
			ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
			got, err := RunCtx(ctx, cfg, workload.Sort, ds, nil, nil, mode)
			cancel()
			if err != nil {
				t.Fatalf("%s/%v: %v", cfg.Name(), mode, err)
			}
			want, err := RunCtx(context.Background(), cfg, workload.Sort, ds, nil, nil, mode)
			if err != nil {
				t.Fatalf("%s/%v: %v", cfg.Name(), mode, err)
			}
			if got.Elapsed != want.Elapsed {
				t.Errorf("%s/%v: sliced elapsed %v != plain %v", cfg.Name(), mode, got.Elapsed, want.Elapsed)
			}
			if len(got.Details) != len(want.Details) {
				t.Fatalf("%s/%v: details diverged: %v vs %v", cfg.Name(), mode, got.Details, want.Details)
			}
			for k, v := range want.Details {
				if got.Details[k] != v {
					t.Errorf("%s/%v: detail %s = %g, want %g", cfg.Name(), mode, k, got.Details[k], v)
				}
			}
		}
	}
}

// TestRunCtxPreCancelled checks an already-dead context is rejected
// before any simulation work happens.
func TestRunCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunCtx(ctx, arch.ActiveDisks(4), workload.Select, scaled(workload.Select, 16<<20),
		nil, nil, sim.ModeEvent)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("got a result from a cancelled run: %v", res)
	}
}

// TestRunCtxCancelMidRunFreesWorkers cancels a simulation while it is
// executing and checks (a) the cancellation error surfaces and (b) the
// abandoned kernel's parked processes are unwound — no goroutines leak,
// per kernel.Shutdown's contract. This is the worker-freeing guarantee
// the service's admission control relies on.
func TestRunCtxCancelMidRunFreesWorkers(t *testing.T) {
	for _, mode := range []sim.ExecMode{sim.ModeEvent, sim.ModeGoroutine} {
		base := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		started := make(chan struct{})
		go func() {
			<-started
			cancel()
		}()
		// A sort is long enough (hundreds of thousands of events) that
		// cancellation signalled at start reliably lands mid-run.
		close(started)
		_, err := RunCtx(ctx, arch.ActiveDisks(4), workload.Sort, scaled(workload.Sort, 96<<20),
			nil, nil, mode)
		if err == nil {
			// The whole run beat the cancel — possible in principle on the
			// smallest datasets, but worth knowing about.
			t.Fatalf("mode %v: run completed before cancellation", mode)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("mode %v: err = %v, want context.Canceled", mode, err)
		}
		deadline := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > base {
			if time.Now().After(deadline) {
				t.Fatalf("mode %v: goroutines leaked after cancellation: %d live, want <= %d",
					mode, runtime.NumGoroutine(), base)
			}
			time.Sleep(time.Millisecond)
		}
	}
}
