package tasks

import (
	"fmt"

	"howsim/internal/arch"
	"howsim/internal/cluster"
	"howsim/internal/cpu"
	"howsim/internal/disk"
	"howsim/internal/fault"
	"howsim/internal/mpi"
	"howsim/internal/probe"
	"howsim/internal/relational"
	"howsim/internal/sim"
	"howsim/internal/workload"
)

// Message tags for the cluster implementations.
const (
	tagData = iota + 1
	tagDone
	tagResult
	tagCounters
)

// sendWindow bounds the number of in-flight asynchronous sends,
// mirroring the paper's "up to 16 asynchronous receives" pipelining
// without unbounded buffering.
type sendWindow struct {
	hs  []*mpi.Handle
	max int
}

func newSendWindow() *sendWindow { return &sendWindow{max: 16} }

func (w *sendWindow) add(p *sim.Proc, h *mpi.Handle) {
	w.hs = append(w.hs, h)
	if len(w.hs) > w.max {
		w.hs[0].Wait(p)
		w.hs = w.hs[1:]
	}
}

func (w *sendWindow) drain(p *sim.Proc) {
	for _, h := range w.hs {
		h.Wait(p)
	}
	w.hs = nil
}

// runCluster executes one task on a commodity-cluster configuration.
func runCluster(cfg arch.Config, task workload.TaskID, ds workload.Dataset, res *Result,
	plan *fault.Plan, sink *probe.Sink, rc *runCtl) {
	k := sim.NewKernel()
	k.SetExecMode(rc.mode)
	defer k.Close()
	k.SetProbe(sink)
	m := cfg.BuildCluster(k)
	m.InstallFaults(plan)
	deg := &degrade{}
	var done *sim.Signal
	switch task {
	case workload.Select:
		// The tuned cluster select materializes matches on the local
		// disk rather than pushing 1% of 16 GB through the front-end's
		// 100 Mb/s link.
		done = clusterScan(k, m, ds, res, SelectCycles,
			func(n int64) int64 { return int64(float64(n) * ds.Selectivity) }, 0, plan, deg)
	case workload.Aggregate:
		done = clusterScan(k, m, ds, res, AggregateCycles, func(int64) int64 { return 0 }, 512, plan, deg)
	case workload.GroupBy:
		done = clusterGroupBy(k, m, ds, res)
	case workload.Sort:
		done = clusterSort(k, m, ds, res)
	case workload.DataCube:
		done = clusterCube(k, m, ds, res)
	case workload.Join:
		done = clusterJoin(k, m, ds, res)
	case workload.DataMine:
		done = clusterMine(k, m, ds, res)
	case workload.MView:
		done = clusterMView(k, m, ds, res)
	default:
		panic(fmt.Sprintf("tasks: unknown task %v", task))
	}
	res.Elapsed = rc.run(k)
	if rc.cancelled {
		rc.abort(k)
		return
	}
	completed := done.Fired()
	if !completed && plan == nil {
		panic(fmt.Sprintf("tasks: %v on %s deadlocked at %v (%d blocked)\n%s",
			task, cfg.Name(), res.Elapsed, k.Blocked(), k.DeadlockReport()))
	}
	res.Details["net_bytes"] = float64(m.Net.BytesDelivered())
	res.Details["net_msgs"] = float64(m.Net.MessagesDelivered())
	var mediaRead, mediaWrite int64
	disks := make([]*disk.Disk, len(m.Nodes))
	for i, n := range m.Nodes {
		st := n.Disk.Stats()
		mediaRead += st.BytesRead
		mediaWrite += st.BytesWritten
		disks[i] = n.Disk
	}
	res.Details["media_read_bytes"] = float64(mediaRead)
	res.Details["media_write_bytes"] = float64(mediaWrite)
	cpus := make([]*cpu.CPU, len(m.Nodes))
	for i, n := range m.Nodes {
		cpus[i] = n.CPU
	}
	var deadlock string
	if !completed {
		deadlock = k.DeadlockReport()
	}
	faultEpilogue(res, plan, deg, completed, deadlock, disks, cpus, nil)
	probeEpilogue(res, k)
}

// clusterScan: every node scans its local partition; emitted bytes are
// written back to the local disk (select's result relation); finalBytes
// go to the front-end (aggregate's scalar).
//
// Recovery: cluster hosts can only address their own disk, so when a
// node's drive fails and the plan declares replicas, the peer node
// holding the replica copy takes over the rest of the partition — its
// CPU, disk and buses are charged, and the failed node's remaining
// output lands in a spare region of the peer's disk. Without a replica
// the remainder of the partition is reported lost. A hard media error
// loses just its chunk.
func clusterScan(k *sim.Kernel, m *cluster.Machine, ds workload.Dataset, res *Result,
	cycles int64, emit func(int64) int64, finalBytes int64,
	plan *fault.Plan, deg *degrade) *sim.Signal {
	d := len(m.Nodes)
	per := perNodeBytes(ds.TotalBytes, d)
	deg.total = per * int64(d)
	capEach := m.Nodes[0].Disk.Capacity()
	outRegion := alignSector(2 * capEach / 3)
	replicaRegion := replicaRegionOf(capEach)
	// The take-over output region sits above the replica copy so it never
	// collides with the peer's own output range.
	replicaOut := alignSector(11 * capEach / 12)
	done := sim.NewSignal()
	wg := sim.NewWaitGroup(d)
	if finalBytes > 0 {
		k.Spawn("fe.collect", func(p *sim.Proc) {
			for i := 0; i < d; i++ {
				m.FE.Endpoint().Recv(p, mpi.AnySource, tagResult)
			}
		})
	}
	for i := range m.Nodes {
		i := i
		n := m.Nodes[i]
		k.Spawn(fmt.Sprintf("scan%d", i), func(p *sim.Proc) {
			src, base, outBase := n, int64(0), outRegion
			var pend, outOff int64
			for off := int64(0); off < per; {
				sz := int64(ioChunk)
				if per-off < sz {
					sz = alignSector(per - off)
				}
				err := src.ReadLocal(p, base+off, sz)
				if err == disk.ErrDiskFailed {
					if plan != nil && plan.Replica && d > 1 && base == 0 {
						src, base, outBase = m.Nodes[(i+1)%d], replicaRegion, replicaOut
						outOff = 0
						continue
					}
					deg.lost += per - off
					break
				}
				if err != nil {
					deg.lost += sz
				} else {
					if base != 0 {
						deg.replica += sz
					}
					t := tuplesIn(sz, ds.TupleBytes)
					src.Compute(p, t*cycles)
					pend += emit(sz)
					if pend >= flushBatch {
						src.WriteLocal(p, outBase+outOff, alignSector(pend))
						outOff += alignSector(pend)
						pend = 0
					}
				}
				off += sz
			}
			if pend > 0 {
				src.WriteLocal(p, outBase+outOff, alignSector(pend))
			}
			if finalBytes > 0 {
				n.Endpoint().Send(p, m.FERank, tagResult, finalBytes, nil)
			}
			wg.Done()
		})
	}
	k.Spawn("coord", func(p *sim.Proc) {
		wg.Wait(p)
		done.Fire()
	})
	return done
}

// clusterGroupBy: local hash aggregation, a hash repartition of the
// partial tables among the nodes (the scalable part), then every node
// ships its share of the *result relation* (64-byte result tuples) to
// the front-end — whose 100 Mb/s link is the bottleneck the paper calls
// out for this task.
func clusterGroupBy(k *sim.Kernel, m *cluster.Machine, ds workload.Dataset, res *Result) *sim.Signal {
	d := len(m.Nodes)
	per := perNodeBytes(ds.TotalBytes, d)
	localTuples := tuplesIn(per, ds.TupleBytes)
	partial := expectedDistinct(localTuples, ds.DistinctGroups) * GroupEntryBytes
	resultShare := ds.DistinctGroups * GroupResultTupleBytes / int64(d)
	res.Details["partial_bytes_per_node"] = float64(partial)
	res.Details["fe_result_bytes"] = float64(resultShare * int64(d))

	done := sim.NewSignal()
	wg := sim.NewWaitGroup(d)
	k.Spawn("fe.collect", func(p *sim.Proc) {
		for i := 0; i < d; i++ {
			msg := m.FE.Endpoint().Recv(p, mpi.AnySource, tagResult)
			m.FE.CPU.Compute(p, msg.Bytes/GroupResultTupleBytes*GroupMergeCycles)
		}
	})
	for i := range m.Nodes {
		i := i
		n := m.Nodes[i]
		k.Spawn(fmt.Sprintf("gby%d", i), func(p *sim.Proc) {
			ep := n.Endpoint()
			chunksOf(per, func(off, sz int64) {
				n.ReadLocal(p, off, sz)
				t := tuplesIn(sz, ds.TupleBytes)
				n.Compute(p, t*GroupByCycles)
			})
			// Repartition partial tables: send each peer its hash range.
			w := newSendWindow()
			share := partial / int64(d)
			for j := 0; j < d; j++ {
				if j == i || share == 0 {
					continue
				}
				w.add(p, ep.Isend(p, j, tagData, share, nil))
			}
			for j := 0; j < d-1; j++ {
				msg := ep.Recv(p, mpi.AnySource, tagData)
				n.Compute(p, msg.Bytes/GroupEntryBytes*GroupMergeCycles)
			}
			w.drain(p)
			// Ship this node's share of the result relation to the FE.
			ep.Send(p, m.FERank, tagResult, resultShare, nil)
			wg.Done()
		})
	}
	k.Spawn("coord", func(p *sim.Proc) {
		wg.Wait(p)
		done.Fire()
	})
	return done
}

// clusterSort mirrors the Active Disk sort: partition + shuffle over the
// fat tree, run formation in the 104 MB of usable node memory, local
// merge.
func clusterSort(k *sim.Kernel, m *cluster.Machine, ds workload.Dataset, res *Result) *sim.Signal {
	d := len(m.Nodes)
	per := perNodeBytes(ds.TotalBytes, d)
	capEach := m.Nodes[0].Disk.Capacity()
	runRegion := alignSector(capEach / 3)
	outRegion := alignSector(2 * capEach / 3)
	runBytes := alignSector(m.UsableMemoryBytes() - 24<<20)
	if runBytes > per {
		runBytes = alignSector(per)
	}
	plan := relational.PlanExternalSort(per, runBytes, 0)
	res.Details["runs"] = float64(plan.Runs)

	done := sim.NewSignal()
	workers := sim.NewWaitGroup(d)
	var p1End sim.Time // latest shuffle/run-formation finish across nodes
	for i := range m.Nodes {
		i := i
		n := m.Nodes[i]
		k.Spawn(fmt.Sprintf("sort%d", i), func(p *sim.Proc) {
			ep := n.Endpoint()
			w := newSendWindow()
			var fill int64
			var runSizes []int64
			// Interleave scan/partition/send with receive processing:
			// receives are drained opportunistically between chunks via a
			// receiver goroutine per node.
			recvDone := sim.NewSignal()
			peersLeft := d - 1
			k.Spawn(fmt.Sprintf("recv%d", i), func(rp *sim.Proc) {
				for peersLeft > 0 {
					msg := ep.Recv(rp, mpi.AnySource, mpi.AnyTag)
					switch msg.Tag {
					case tagDone:
						peersLeft--
					case tagData:
						t := tuplesIn(msg.Bytes, ds.TupleBytes)
						n.Compute(rp, t*AppendCycles)
						fill += msg.Bytes
						for fill >= runBytes {
							rt := tuplesIn(runBytes, ds.TupleBytes)
							n.Compute(rp, rt*RunSortCycles)
							var written int64
							for _, r := range runSizes {
								written += r
							}
							n.WriteLocal(rp, runRegion+written, runBytes)
							runSizes = append(runSizes, runBytes)
							fill -= runBytes
						}
					}
				}
				recvDone.Fire()
			})
			rot := 0
			chunksOf(per, func(off, sz int64) {
				n.ReadLocal(p, off, sz)
				t := tuplesIn(sz, ds.TupleBytes)
				n.Compute(p, t*PartitionCycles)
				remote := sz * int64(d-1) / int64(d)
				if remote > 0 && d > 1 {
					dst := (i + 1 + rot) % d
					rot = (rot + 1) % (d - 1)
					w.add(p, ep.Isend(p, dst, tagData, remote, nil))
				}
				local := sz - remote
				t = tuplesIn(local, ds.TupleBytes)
				n.Compute(p, t*AppendCycles)
				fill += local
			})
			w.drain(p)
			for j := 0; j < d; j++ {
				if j != i {
					ep.Send(p, j, tagDone, 0, nil)
				}
			}
			recvDone.Wait(p)
			// Final partial run.
			if fill > 0 {
				t := tuplesIn(fill, ds.TupleBytes)
				n.Compute(p, t*RunSortCycles)
				var written int64
				for _, r := range runSizes {
					written += r
				}
				sz := alignSector(fill)
				n.WriteLocal(p, runRegion+written, sz)
				runSizes = append(runSizes, sz)
			}
			// Merge phase on the local disk.
			if now := p.Now(); now > p1End {
				p1End = now
			}
			clusterMerge(p, n, runSizes, runRegion, outRegion, ds.TupleBytes)
			workers.Done()
		})
	}
	k.Spawn("coord", func(p *sim.Proc) {
		workers.Wait(p)
		res.Details["p1_seconds"] = p1End.Seconds()
		res.Details["p2_seconds"] = (p.Now() - p1End).Seconds()
		done.Fire()
	})
	return done
}

// clusterMerge is the node-local merge of sorted runs (identical
// structure to the Active Disk merge).
func clusterMerge(p *sim.Proc, n *cluster.Node, runSizes []int64,
	runRegion, outRegion int64, tupleBytes int) {
	if len(runSizes) == 0 {
		return
	}
	const visit = 512 << 10
	runStarts := make([]int64, len(runSizes))
	var total int64
	for i, sz := range runSizes {
		runStarts[i] = runRegion + total
		total += sz
	}
	consumed := make([]int64, len(runSizes))
	lvl := log2Ceil(len(runSizes))
	var outPend, outOff, readTotal int64
	r := 0
	for readTotal < total {
		for consumed[r] >= runSizes[r] {
			r = (r + 1) % len(runSizes)
		}
		sz := int64(visit)
		if rem := runSizes[r] - consumed[r]; rem < sz {
			sz = rem
		}
		n.ReadLocal(p, runStarts[r]+consumed[r], sz)
		consumed[r] += sz
		readTotal += sz
		t := tuplesIn(sz, tupleBytes)
		n.Compute(p, t*(MergeCyclesBase+MergeCyclesPerLevel*lvl))
		outPend += sz
		if outPend >= flushBatch {
			n.WriteLocal(p, outRegion+outOff, outPend)
			outOff += outPend
			outPend = 0
		}
		r = (r + 1) % len(runSizes)
	}
	if outPend > 0 {
		n.WriteLocal(p, outRegion+outOff, alignSector(outPend))
	}
}

// clusterCube: PipeHash with the tables partitioned across the nodes'
// 104 MB memories. The larger per-node memory (vs 32 MB Active Disks)
// gives the cluster fewer passes at small configurations — the paper's
// "dcube about 35% faster than Active Disks for 16 disks".
func clusterCube(k *sim.Kernel, m *cluster.Machine, ds workload.Dataset, res *Result) *sim.Signal {
	d := len(m.Nodes)
	per := perNodeBytes(ds.TotalBytes, d)
	shape := relational.PaperCubeShape()
	if ds.TotalBytes < workload.ForTask(workload.DataCube).TotalBytes {
		f := float64(ds.TotalBytes) / float64(workload.ForTask(workload.DataCube).TotalBytes)
		shape.LargestTableBytes = int64(float64(shape.LargestTableBytes) * f)
		for i := range shape.OtherTablesBytes {
			shape.OtherTablesBytes[i] = int64(float64(shape.OtherTablesBytes[i]) * f)
		}
	}
	plan := shape.Plan(d, m.UsableMemoryBytes(), 24<<20)
	res.Details["passes"] = float64(plan.Passes)
	res.Details["spill_bytes"] = float64(plan.SpillBytes)

	interRegion := alignSector(m.Nodes[0].Disk.Capacity() / 3)
	tableRegion := alignSector(2 * m.Nodes[0].Disk.Capacity() / 3)
	interBytes := alignSector(int64(float64(per) * CubeIntermediateFraction))
	var tables int64 = shape.LargestTableBytes
	for _, t := range shape.OtherTablesBytes {
		tables += t
	}
	tablesPer := alignSector(tables / int64(d))

	done := sim.NewSignal()
	wg := sim.NewWaitGroup(d)
	if plan.SpillBytes > 0 {
		k.Spawn("fe.spill", func(p *sim.Proc) {
			for i := 0; i < d; i++ {
				msg := m.FE.Endpoint().Recv(p, mpi.AnySource, tagData)
				m.FE.CPU.Compute(p, msg.Bytes/32*GroupMergeCycles)
			}
		})
	}
	for i := range m.Nodes {
		n := m.Nodes[i]
		k.Spawn(fmt.Sprintf("cube%d", i), func(p *sim.Proc) {
			var interWritten int64
			chunksOf(per, func(off, sz int64) {
				n.ReadLocal(p, off, sz)
				t := tuplesIn(sz, ds.TupleBytes)
				n.Compute(p, t*CubeCycles)
				if interWritten < interBytes {
					w := sz
					if interBytes-interWritten < w {
						w = alignSector(interBytes - interWritten)
					}
					n.WriteLocal(p, interRegion+interWritten, w)
					interWritten += w
				}
			})
			if plan.SpillBytes > 0 {
				n.Endpoint().Send(p, m.FERank, tagData, plan.SpillBytes/int64(d), nil)
			}
			for pass := 1; pass < plan.Passes; pass++ {
				chunksOf(interBytes, func(off, sz int64) {
					n.ReadLocal(p, interRegion+off, sz)
					t := tuplesIn(sz, ds.TupleBytes)
					n.Compute(p, t*CubeCycles)
				})
			}
			chunksOf(tablesPer, func(off, sz int64) {
				n.WriteLocal(p, tableRegion+off, sz)
			})
			wg.Done()
		})
	}
	k.Spawn("coord", func(p *sim.Proc) {
		wg.Wait(p)
		done.Fire()
	})
	return done
}

// clusterJoin: project + hash repartition of both relations over the
// network, partitions staged on the local disks, then a node-local
// Grace join.
func clusterJoin(k *sim.Kernel, m *cluster.Machine, ds workload.Dataset, res *Result) *sim.Signal {
	d := len(m.Nodes)
	rBytes := ds.TotalBytes / 2
	sBytes := ds.TotalBytes - rBytes
	perR := perNodeBytes(rBytes, d)
	perS := perNodeBytes(sBytes, d)
	projFrac := float64(ds.ProjectedTupleBytes) / float64(ds.TupleBytes)
	partRegion := alignSector(m.Nodes[0].Disk.Capacity() / 3)
	outRegion := alignSector(2 * m.Nodes[0].Disk.Capacity() / 3)
	projR := alignSector(int64(float64(perR) * projFrac))
	projS := alignSector(int64(float64(perS) * projFrac))

	done := sim.NewSignal()
	workers := sim.NewWaitGroup(d)
	for i := range m.Nodes {
		i := i
		n := m.Nodes[i]
		k.Spawn(fmt.Sprintf("join%d", i), func(p *sim.Proc) {
			ep := n.Endpoint()
			var pend, written int64
			flush := func(final bool) {
				if pend >= flushBatch || (final && pend > 0) {
					w := alignSector(pend)
					n.WriteLocal(p, partRegion+written, w)
					written += w
					pend = 0
				}
			}
			recvDone := sim.NewSignal()
			peersLeft := 2 * (d - 1) // a done per peer per relation
			k.Spawn(fmt.Sprintf("jrecv%d", i), func(rp *sim.Proc) {
				for peersLeft > 0 {
					msg := ep.Recv(rp, mpi.AnySource, mpi.AnyTag)
					switch msg.Tag {
					case tagDone:
						peersLeft--
					case tagData:
						t := tuplesIn(msg.Bytes, ds.ProjectedTupleBytes)
						n.Compute(rp, t*AppendCycles/4)
						pend += msg.Bytes
						flushInner := pend >= flushBatch
						if flushInner {
							w := alignSector(pend)
							n.WriteLocal(rp, partRegion+written, w)
							written += w
							pend = 0
						}
					}
				}
				recvDone.Fire()
			})
			shuffle := func(per int64) {
				w := newSendWindow()
				rot := 0
				chunksOf(per, func(off, sz int64) {
					n.ReadLocal(p, off, sz)
					t := tuplesIn(sz, ds.TupleBytes)
					n.Compute(p, t*ProjectCycles)
					proj := int64(float64(sz) * projFrac)
					remote := proj * int64(d-1) / int64(d)
					if remote > 0 && d > 1 {
						dst := (i + 1 + rot) % d
						rot = (rot + 1) % (d - 1)
						w.add(p, ep.Isend(p, dst, tagData, remote, nil))
					}
				})
				w.drain(p)
				for j := 0; j < d; j++ {
					if j != i {
						ep.Send(p, j, tagDone, 0, nil)
					}
				}
			}
			shuffle(perR)
			shuffle(perS)
			recvDone.Wait(p)
			pend += (projR + projS) / int64(d) // locally retained share
			flush(true)

			// Node-local Grace join.
			totalPart := written
			rShare := totalPart * projR / (projR + projS)
			sShare := totalPart - rShare
			chunksOf(rShare, func(off, sz int64) {
				n.ReadLocal(p, partRegion+off, sz)
				t := tuplesIn(sz, ds.ProjectedTupleBytes)
				n.Compute(p, t*BuildCycles)
			})
			var outOff int64
			chunksOf(sShare, func(off, sz int64) {
				n.ReadLocal(p, partRegion+rShare+off, sz)
				t := tuplesIn(sz, ds.ProjectedTupleBytes)
				n.Compute(p, t*ProbeCycles)
				out := int64(float64(sz) * JoinOutputFraction)
				if out > 0 {
					n.WriteLocal(p, outRegion+outOff, alignSector(out))
					outOff += alignSector(out)
				}
			})
			workers.Done()
		})
	}
	k.Spawn("coord", func(p *sim.Proc) {
		workers.Wait(p)
		done.Fire()
	})
	return done
}

// clusterMine: MinePasses scans with a butterfly (dissemination)
// all-reduce of the candidate counters between passes — the scalable
// alternative to funnelling every counter set through the front-end.
func clusterMine(k *sim.Kernel, m *cluster.Machine, ds workload.Dataset, res *Result) *sim.Signal {
	d := len(m.Nodes)
	per := perNodeBytes(ds.TotalBytes, d)
	counters := int64(MineCounterBytes)
	if ds.TotalBytes < workload.ForTask(workload.DataMine).TotalBytes {
		f := float64(ds.TotalBytes) / float64(workload.ForTask(workload.DataMine).TotalBytes)
		counters = int64(float64(counters) * f)
		if counters < 4096 {
			counters = 4096
		}
	}
	res.Details["passes"] = float64(MinePasses)
	rounds := 0
	for v := d - 1; v > 0; v >>= 1 {
		rounds++
	}
	done := sim.NewSignal()
	workers := sim.NewWaitGroup(d)
	for i := range m.Nodes {
		i := i
		n := m.Nodes[i]
		k.Spawn(fmt.Sprintf("mine%d", i), func(p *sim.Proc) {
			ep := n.Endpoint()
			for pass := 0; pass < MinePasses; pass++ {
				chunksOf(per, func(off, sz int64) {
					n.ReadLocal(p, off, sz)
					txns := tuplesIn(sz, ds.TupleBytes)
					n.Compute(p, txns*MineCycles)
				})
				// Butterfly all-reduce of the counters.
				for r := 0; r < rounds; r++ {
					partner := i ^ (1 << r)
					if partner >= d {
						continue
					}
					h := ep.Isend(p, partner, tagCounters, counters, nil)
					msg := ep.Recv(p, partner, tagCounters)
					n.Compute(p, msg.Bytes/MineCounterEntryBytes*MineMergeCycles)
					h.Wait(p)
				}
			}
			workers.Done()
		})
	}
	k.Spawn("coord", func(p *sim.Proc) {
		workers.Wait(p)
		done.Fire()
	})
	return done
}

// clusterMView mirrors the Active Disk view maintenance: shuffle deltas
// to base owners, scan base + join, shuffle derived updates to view
// owners, read-modify-write the derived relations.
func clusterMView(k *sim.Kernel, m *cluster.Machine, ds workload.Dataset, res *Result) *sim.Signal {
	d := len(m.Nodes)
	base := perNodeBytes(baseBytes(ds), d)
	deltas := perNodeBytes(ds.DeltaBytes, d)
	derived := perNodeBytes(ds.DerivedBytes, d)
	updates := deltas * ViewFanout

	stageRegion := alignSector(m.Nodes[0].Disk.Capacity() / 3)
	derivedRegion := alignSector(2 * m.Nodes[0].Disk.Capacity() / 3)

	done := sim.NewSignal()
	workers := sim.NewWaitGroup(d)
	for i := range m.Nodes {
		i := i
		n := m.Nodes[i]
		k.Spawn(fmt.Sprintf("mview%d", i), func(p *sim.Proc) {
			ep := n.Endpoint()
			recvDone := sim.NewSignal()
			peersLeft := d - 1
			k.Spawn(fmt.Sprintf("mvrecv%d", i), func(rp *sim.Proc) {
				for peersLeft > 0 {
					msg := ep.Recv(rp, mpi.AnySource, mpi.AnyTag)
					switch msg.Tag {
					case tagDone:
						peersLeft--
					case tagData:
						t := tuplesIn(msg.Bytes, ds.TupleBytes)
						n.Compute(rp, t*AppendCycles/4)
					}
				}
				recvDone.Fire()
			})
			w := newSendWindow()
			rot := 0
			sendRemote := func(bytes int64) {
				if bytes <= 0 || d == 1 {
					return
				}
				dst := (i + 1 + rot) % d
				rot = (rot + 1) % (d - 1)
				w.add(p, ep.Isend(p, dst, tagData, bytes, nil))
			}
			chunksOf(deltas, func(off, sz int64) {
				n.ReadLocal(p, off, sz)
				t := tuplesIn(sz, ds.TupleBytes)
				n.Compute(p, t*PartitionCycles/3)
				sendRemote(sz * int64(d-1) / int64(d))
			})
			baseStart := alignSector(deltas)
			perChunkUpd := float64(updates) / float64(base)
			var pendUpd float64
			chunksOf(base, func(off, sz int64) {
				n.ReadLocal(p, baseStart+off, sz)
				t := tuplesIn(sz, ds.TupleBytes)
				n.Compute(p, t*ViewProbeCycles)
				pendUpd += float64(sz) * perChunkUpd
				if int64(pendUpd) >= flushBatch {
					sendRemote(int64(pendUpd) * int64(d-1) / int64(d))
					pendUpd = 0
				}
			})
			if int64(pendUpd) > 0 {
				sendRemote(int64(pendUpd) * int64(d-1) / int64(d))
			}
			w.drain(p)
			for j := 0; j < d; j++ {
				if j != i {
					ep.Send(p, j, tagDone, 0, nil)
				}
			}
			recvDone.Wait(p)
			// Apply updates to the local derived relations.
			updPerByte := float64(updates) / float64(derived)
			var outOff int64
			chunksOf(derived, func(off, sz int64) {
				n.ReadLocal(p, derivedRegion+off, sz)
				t := tuplesIn(sz, ds.TupleBytes)
				upd := int64(float64(sz) * updPerByte / float64(ds.TupleBytes))
				n.Compute(p, t*ViewScanCycles+upd*ViewDeltaCycles)
				n.WriteLocal(p, stageRegion+outOff, sz)
				outOff += sz
			})
			workers.Done()
		})
	}
	k.Spawn("coord", func(p *sim.Proc) {
		workers.Wait(p)
		done.Fire()
	})
	return done
}
