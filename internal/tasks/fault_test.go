package tasks

import (
	"reflect"
	"testing"

	"howsim/internal/arch"
	"howsim/internal/fault"
	"howsim/internal/workload"
)

func mustPlan(t *testing.T, s string) *fault.Plan {
	t.Helper()
	p, err := fault.ParsePlan(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestFaultReportDeterminism: the same plan against the same workload
// must yield byte-identical rendered reports, run after run.
func TestFaultReportDeterminism(t *testing.T) {
	ds := scaled(workload.Select, 48<<20)
	for _, cfg := range []arch.Config{arch.ActiveDisks(4), arch.Cluster(4), arch.SMP(4)} {
		cfg := cfg
		t.Run(cfg.Name(), func(t *testing.T) {
			const planStr = "seed=42,media=0.002,slow=0.001,fail=3@50ms,replica"
			a := RunDatasetFaulted(cfg, workload.Select, ds, mustPlan(t, planStr))
			b := RunDatasetFaulted(cfg, workload.Select, ds, mustPlan(t, planStr))
			if a.Fault == nil || b.Fault == nil {
				t.Fatal("faulted run produced no FaultReport")
			}
			ra, rb := a.Fault.Render(), b.Fault.Render()
			if ra != rb {
				t.Fatalf("same seed, different reports:\n--- run 1 ---\n%s--- run 2 ---\n%s", ra, rb)
			}
			if a.Elapsed != b.Elapsed {
				t.Errorf("elapsed differs: %v vs %v", a.Elapsed, b.Elapsed)
			}
		})
	}
}

// TestFaultFreeEquivalence: a nil or empty plan must leave the
// simulation untouched — identical elapsed time and details, and no
// FaultReport attached.
func TestFaultFreeEquivalence(t *testing.T) {
	ds := scaled(workload.Aggregate, 48<<20)
	for _, cfg := range []arch.Config{arch.ActiveDisks(4), arch.Cluster(4), arch.SMP(4)} {
		cfg := cfg
		t.Run(cfg.Name(), func(t *testing.T) {
			base := RunDataset(cfg, workload.Aggregate, ds)
			nilPlan := RunDatasetFaulted(cfg, workload.Aggregate, ds, nil)
			empty := RunDatasetFaulted(cfg, workload.Aggregate, ds, mustPlan(t, "seed=7"))
			for name, got := range map[string]*Result{"nil plan": nilPlan, "empty plan": empty} {
				if got.Fault != nil {
					t.Errorf("%s attached a FaultReport", name)
				}
				if got.Elapsed != base.Elapsed {
					t.Errorf("%s elapsed = %v, want %v", name, got.Elapsed, base.Elapsed)
				}
				if !reflect.DeepEqual(got.Details, base.Details) {
					t.Errorf("%s details diverge from the fault-free run:\n%v\n%v",
						name, got.Details, base.Details)
				}
			}
		})
	}
}

// TestDiskFailureDegrades: with one disk failed mid-scan and no
// replicas, every architecture must still run to completion, reporting
// the failed disk and a coverage fraction strictly between 0 and 1.
func TestDiskFailureDegrades(t *testing.T) {
	ds := scaled(workload.Select, 48<<20)
	for _, cfg := range []arch.Config{arch.ActiveDisks(4), arch.Cluster(4), arch.SMP(4)} {
		cfg := cfg
		t.Run(cfg.Name(), func(t *testing.T) {
			res := RunDatasetFaulted(cfg, workload.Select, ds, mustPlan(t, "seed=1,fail=2@20ms"))
			fr := res.Fault
			if fr == nil {
				t.Fatal("no FaultReport")
			}
			if !fr.Completed {
				t.Fatalf("run did not complete:\n%s", fr.Render())
			}
			if len(fr.FailedDisks) != 1 {
				t.Errorf("failed disks = %v, want exactly one", fr.FailedDisks)
			}
			if fr.BytesLost <= 0 || fr.BytesLost >= fr.BytesTotal {
				t.Errorf("bytes lost = %d of %d, want partial loss", fr.BytesLost, fr.BytesTotal)
			}
			if c := fr.Coverage(); c <= 0 || c >= 1 {
				t.Errorf("coverage = %v, want in (0, 1)", c)
			}
		})
	}
}

// TestDiskFailureReplicaRecovers: the same failure with replicas
// declared must complete with full coverage, the lost ranges re-read
// from the peer.
func TestDiskFailureReplicaRecovers(t *testing.T) {
	ds := scaled(workload.Select, 48<<20)
	for _, cfg := range []arch.Config{arch.ActiveDisks(4), arch.Cluster(4), arch.SMP(4)} {
		cfg := cfg
		t.Run(cfg.Name(), func(t *testing.T) {
			res := RunDatasetFaulted(cfg, workload.Select, ds, mustPlan(t, "seed=1,fail=2@20ms,replica"))
			fr := res.Fault
			if fr == nil {
				t.Fatal("no FaultReport")
			}
			if !fr.Completed {
				t.Fatalf("run did not complete:\n%s", fr.Render())
			}
			if fr.BytesLost != 0 {
				t.Errorf("bytes lost = %d with replicas declared, want 0", fr.BytesLost)
			}
			if fr.ReplicaBytes <= 0 {
				t.Errorf("replica bytes = %d, want > 0 (recovery must go through the peer)", fr.ReplicaBytes)
			}
			if c := fr.Coverage(); c != 1 {
				t.Errorf("coverage = %v, want 1", c)
			}
		})
	}
}

// TestMediaErrorsRetryAndRecover: transient media errors alone must not
// lose data; the report counts the retries and the time they cost.
func TestMediaErrorsRetryAndRecover(t *testing.T) {
	ds := scaled(workload.Select, 48<<20)
	res := RunDatasetFaulted(arch.ActiveDisks(4), workload.Select, ds,
		mustPlan(t, "seed=9,media=0.2,slow=0.1"))
	fr := res.Fault
	if fr == nil {
		t.Fatal("no FaultReport")
	}
	if !fr.Completed {
		t.Fatalf("run did not complete:\n%s", fr.Render())
	}
	if fr.Retries == 0 {
		t.Error("no retries recorded at media=0.2")
	}
	if fr.SlowRequests == 0 {
		t.Error("no slow requests recorded at slow=0.1")
	}
	if fr.FaultDelaySec <= 0 {
		t.Error("fault delay not accounted")
	}
	// Faults cost time: the run must be slower than the clean one.
	clean := RunDataset(arch.ActiveDisks(4), workload.Select, ds)
	if res.Elapsed <= clean.Elapsed {
		t.Errorf("faulted run (%v) not slower than clean run (%v)", res.Elapsed, clean.Elapsed)
	}
}

// TestCorruptionRereads: silent corruption caught by checksum verify
// must surface as corrupt reads and rereads in the report, cost time,
// and stay deterministic.
func TestCorruptionRereads(t *testing.T) {
	ds := scaled(workload.Select, 48<<20)
	const planStr = "seed=5,corrupt=0.1"
	res := RunDatasetFaulted(arch.ActiveDisks(4), workload.Select, ds, mustPlan(t, planStr))
	fr := res.Fault
	if fr == nil {
		t.Fatal("no FaultReport")
	}
	if !fr.Completed {
		t.Fatalf("run did not complete:\n%s", fr.Render())
	}
	if fr.CorruptReads == 0 {
		t.Error("no corrupt reads recorded at corrupt=0.1")
	}
	if fr.Rereads < fr.CorruptReads {
		t.Errorf("rereads = %d < corrupt reads = %d; every corruption costs at least one reread",
			fr.Rereads, fr.CorruptReads)
	}
	clean := RunDataset(arch.ActiveDisks(4), workload.Select, ds)
	if res.Elapsed <= clean.Elapsed {
		t.Errorf("corrupted run (%v) not slower than clean run (%v)", res.Elapsed, clean.Elapsed)
	}
	again := RunDatasetFaulted(arch.ActiveDisks(4), workload.Select, ds, mustPlan(t, planStr))
	if again.Fault.Render() != fr.Render() {
		t.Error("corruption report not byte-reproducible")
	}
}

// TestStragglerSlowsRun: a per-drive CPU slowdown window must be
// charged to straggler delay, stretch the run once the slowed processor
// becomes the bottleneck, and stay deterministic across every
// architecture. The factor is large because a media-bound scan absorbs
// a mild slowdown in the drive's readahead — correctly so.
func TestStragglerSlowsRun(t *testing.T) {
	ds := scaled(workload.Select, 48<<20)
	const planStr = "seed=1,straggler=0@0s+1s*100"
	for _, cfg := range []arch.Config{arch.ActiveDisks(4), arch.Cluster(4), arch.SMP(4)} {
		cfg := cfg
		t.Run(cfg.Name(), func(t *testing.T) {
			res := RunDatasetFaulted(cfg, workload.Select, ds, mustPlan(t, planStr))
			fr := res.Fault
			if fr == nil {
				t.Fatal("no FaultReport")
			}
			if !fr.Completed {
				t.Fatalf("run did not complete:\n%s", fr.Render())
			}
			if fr.StragglerDelaySec <= 0 {
				t.Error("no straggler delay accounted")
			}
			if fr.BytesLost != 0 {
				t.Errorf("straggler lost %d bytes; slowdowns must not lose data", fr.BytesLost)
			}
			clean := RunDataset(cfg, workload.Select, ds)
			if res.Elapsed <= clean.Elapsed {
				t.Errorf("straggler run (%v) not slower than clean run (%v)", res.Elapsed, clean.Elapsed)
			}
			again := RunDatasetFaulted(cfg, workload.Select, ds, mustPlan(t, planStr))
			if again.Fault.Render() != fr.Render() {
				t.Error("straggler report not byte-reproducible")
			}
		})
	}
}

// TestSpareRebuild: a permanent failure with a replica and a declared
// spare must trigger the background rebuild — the surviving replica
// streams the lost partition onto the spare, the report carries
// RebuildStats, and the whole thing is byte-reproducible.
func TestSpareRebuild(t *testing.T) {
	ds := scaled(workload.Select, 48<<20)
	const planStr = "seed=42,fail=3@40ms,replica,spare"
	res := RunDatasetFaulted(arch.ActiveDisks(4), workload.Select, ds, mustPlan(t, planStr))
	fr := res.Fault
	if fr == nil {
		t.Fatal("no FaultReport")
	}
	if !fr.Completed {
		t.Fatalf("run did not complete:\n%s", fr.Render())
	}
	if fr.Rebuild == nil {
		t.Fatalf("no RebuildStats in report:\n%s", fr.Render())
	}
	rb := fr.Rebuild
	if rb.Spare != "spare" {
		t.Errorf("rebuild target = %q, want \"spare\"", rb.Spare)
	}
	per := perNodeBytes(ds.TotalBytes, 4)
	if rb.Bytes != per {
		t.Errorf("rebuilt %d bytes, want the failed disk's %d-byte partition", rb.Bytes, per)
	}
	if rb.StartSec < mustPlan(t, planStr).FailAt.Seconds() {
		t.Errorf("rebuild started at %vs, before the failure", rb.StartSec)
	}
	if rb.EndSec <= rb.StartSec {
		t.Errorf("rebuild end %vs not after start %vs", rb.EndSec, rb.StartSec)
	}
	// The rebuild contends with the foreground scan: the run must take
	// longer than the same failure recovered by replica reads alone.
	replicaOnly := RunDatasetFaulted(arch.ActiveDisks(4), workload.Select, ds,
		mustPlan(t, "seed=42,fail=3@40ms,replica"))
	if res.Elapsed <= replicaOnly.Elapsed {
		t.Errorf("rebuild run (%v) not slower than replica-only run (%v)",
			res.Elapsed, replicaOnly.Elapsed)
	}
	again := RunDatasetFaulted(arch.ActiveDisks(4), workload.Select, ds, mustPlan(t, planStr))
	if again.Fault.Render() != fr.Render() {
		t.Errorf("rebuild report not byte-reproducible:\n--- run 1 ---\n%s--- run 2 ---\n%s",
			fr.Render(), again.Fault.Render())
	}
	if again.Elapsed != res.Elapsed {
		t.Errorf("elapsed differs across identical rebuild runs: %v vs %v", res.Elapsed, again.Elapsed)
	}
}

// TestRebuildRateThrottle: a rebuild-rate cap must stretch the rebuild
// window without losing any rebuilt bytes, and the paced run must stay
// byte-reproducible — the pacing delays are pure functions of the plan,
// not of host timing.
func TestRebuildRateThrottle(t *testing.T) {
	ds := scaled(workload.Select, 48<<20)
	const free = "seed=42,fail=3@40ms,replica,spare"
	const paced = "seed=42,fail=3@40ms,replica,spare,rebuild-rate=5"
	unthrottled := RunDatasetFaulted(arch.ActiveDisks(4), workload.Select, ds, mustPlan(t, free))
	throttled := RunDatasetFaulted(arch.ActiveDisks(4), workload.Select, ds, mustPlan(t, paced))
	if throttled.Fault == nil || throttled.Fault.Rebuild == nil {
		t.Fatal("paced run carried no RebuildStats")
	}
	rb, free0 := throttled.Fault.Rebuild, unthrottled.Fault.Rebuild
	if rb.Bytes != free0.Bytes {
		t.Errorf("pacing changed rebuilt bytes: %d vs %d", rb.Bytes, free0.Bytes)
	}
	// 5 MB/s over the 12 MB partition floors the rebuild window at 2.4s,
	// far beyond the unthrottled rebuild; the cap must dominate.
	floor := float64(rb.Bytes) / 5e6
	if got := rb.EndSec - rb.StartSec; got < floor {
		t.Errorf("paced rebuild window %.3fs under the %.3fs rate floor", got, floor)
	}
	if freeWin := free0.EndSec - free0.StartSec; rb.EndSec-rb.StartSec <= freeWin {
		t.Errorf("paced rebuild window %.3fs not longer than unthrottled %.3fs",
			rb.EndSec-rb.StartSec, freeWin)
	}
	again := RunDatasetFaulted(arch.ActiveDisks(4), workload.Select, ds, mustPlan(t, paced))
	if again.Fault.Render() != throttled.Fault.Render() {
		t.Errorf("paced rebuild report not byte-reproducible:\n--- run 1 ---\n%s--- run 2 ---\n%s",
			throttled.Fault.Render(), again.Fault.Render())
	}
	if again.Elapsed != throttled.Elapsed {
		t.Errorf("elapsed differs across identical paced runs: %v vs %v",
			again.Elapsed, throttled.Elapsed)
	}
}
