package tasks

import (
	"context"
	"fmt"
	"sort"

	"howsim/internal/arch"
	"howsim/internal/cpu"
	"howsim/internal/disk"
	"howsim/internal/fault"
	"howsim/internal/probe"
	"howsim/internal/sim"
	"howsim/internal/stats"
	"howsim/internal/workload"
)

// ioChunk is the application I/O request size: the paper adapts all
// tasks "to use large (256 KB) I/O requests".
const ioChunk = 256 << 10

// flushBatch is the batching threshold for result/partial-table
// forwarding ("we aggressively batched I/O operations").
const flushBatch = 1 << 20

// Result is one task execution on one configuration.
type Result struct {
	Task    workload.TaskID
	Config  arch.Config
	Elapsed sim.Time
	// Breakdown holds per-phase CPU/idle attribution (Figure 3).
	Breakdown *sim.Breakdown
	// Details carries auxiliary metrics: bytes over interconnects,
	// utilizations, pass counts.
	Details map[string]float64
	// Fault is the fault/recovery report for runs executed under a fault
	// plan; nil for fault-free runs.
	Fault *stats.FaultReport
}

// String summarizes the result.
func (r *Result) String() string {
	return fmt.Sprintf("%s on %s: %v", r.Task, r.Config.Name(), r.Elapsed)
}

// Run executes a task at the paper's full Table 2 scale on the given
// configuration and returns the simulated result.
func Run(cfg arch.Config, task workload.TaskID) *Result {
	return RunDataset(cfg, task, workload.ForTask(task))
}

// RunDataset executes a task on an explicit (possibly scaled-down)
// dataset. Tests use megabyte-scale datasets; benchmarks use Table 2.
func RunDataset(cfg arch.Config, task workload.TaskID, ds workload.Dataset) *Result {
	return RunDatasetFaulted(cfg, task, ds, nil)
}

// RunFaulted executes a task at full Table 2 scale under a fault plan.
func RunFaulted(cfg arch.Config, task workload.TaskID, plan *fault.Plan) *Result {
	return RunDatasetFaulted(cfg, task, workload.ForTask(task), plan)
}

// RunDatasetFaulted executes a task with deterministic fault injection.
// Result.Fault carries the recovery report. A nil (or empty) plan leaves
// every simulated event identical to RunDataset. Under a plan, a run
// that cannot finish (e.g. a failed disk with no replica declared in a
// task that has no degraded path) is reported as a deadlock in the
// FaultReport instead of panicking.
func RunDatasetFaulted(cfg arch.Config, task workload.TaskID, ds workload.Dataset, plan *fault.Plan) *Result {
	return RunDatasetProbed(cfg, task, ds, plan, nil)
}

// RunDatasetProbed executes a task with an observability sink attached
// to the run's kernel: every model component registers with (and, when
// the sink is enabled, emits into) it, and the task's phase timeline is
// recorded at completion. A nil sink selects the plain path; an
// attached-but-disabled sink costs only registration. The execution
// mode comes from sim.DefaultExecMode; RunCtx is the entry point for
// callers that need an explicit per-run mode or cancellation.
func RunDatasetProbed(cfg arch.Config, task workload.TaskID, ds workload.Dataset,
	plan *fault.Plan, sink *probe.Sink) *Result {
	// context.Background can never cancel, so RunCtx never errors here.
	res, _ := RunCtx(context.Background(), cfg, task, ds, plan, sink, sim.DefaultExecMode)
	return res
}

// degrade accumulates the byte-level damage a faulted scan absorbed.
// The kernel is single-threaded, so scan processes update it without
// locking.
type degrade struct {
	total   int64 // bytes the task was asked to process
	lost    int64 // bytes abandoned after retries and replica attempts
	replica int64 // bytes recovered by reading a replica copy
}

// faultEpilogue assembles Result.Fault from the degradation
// accumulator, the per-disk fault counters, the per-CPU straggler
// accounting and the background-rebuild record. deadlock carries the
// kernel's (or shard group's) parked-process report when the run did
// not complete. No-op for fault-free runs.
func faultEpilogue(res *Result, plan *fault.Plan, deg *degrade, completed bool,
	deadlock string, disks []*disk.Disk, cpus []*cpu.CPU, rb *rebuildState) {
	if plan == nil {
		return
	}
	fr := &stats.FaultReport{
		Plan:         plan.String(),
		Task:         res.Task.String(),
		Config:       res.Config.Name(),
		Completed:    completed,
		ElapsedSec:   res.Elapsed.Seconds(),
		BytesTotal:   deg.total,
		BytesLost:    deg.lost,
		ReplicaBytes: deg.replica,
	}
	if !completed {
		fr.Deadlock = deadlock
	}
	for _, d := range disks {
		st := d.Stats()
		fr.Retries += st.Retries
		fr.SlowRequests += st.SlowRequests
		fr.CorruptReads += st.CorruptReads
		fr.Rereads += st.Rereads
		fr.HardErrors += st.FailedRequests
		fr.FaultDelaySec += st.FaultDelay.Seconds()
		if d.Failed() {
			fr.FailedDisks = append(fr.FailedDisks, d.Name())
		}
	}
	for _, c := range cpus {
		fr.StragglerDelaySec += c.SlowdownTime().Seconds()
	}
	if rb != nil && rb.ran {
		fr.Rebuild = &stats.RebuildStats{
			Spare:    rb.spare,
			Bytes:    rb.bytes,
			StartSec: rb.start.Seconds(),
			EndSec:   rb.end.Seconds(),
		}
	}
	res.Fault = fr
}

// probeEpilogue emits the task's phase timeline into the kernel's probe
// sink. The boundary timestamps the tasks record in Details partition
// [0, Elapsed] into named phases: the phase-1/phase-2 split of sort and
// cube, per-pass boundaries of data mining, the shuffle boundary — and
// a run with no recorded boundaries becomes a single "run" phase.
// Because the phases partition the whole timeline, the breakdown report
// accounts for 100% of end-to-end time up to boundary rounding (the
// Details values are in float64 seconds). Phases are emitted after the
// run completes, so they are the newest spans in the ring and survive
// any overflow. Both execution modes record identical Details, so the
// emitted spans are byte-identical across -procmode settings.
func probeEpilogue(res *Result, k *sim.Kernel) {
	s := k.Probe()
	if !s.Enabled() {
		return
	}
	type mark struct {
		name string
		end  sim.Time
	}
	toTime := func(sec float64) sim.Time {
		t := sim.Time(sec * float64(sim.Second))
		if t < 0 {
			t = 0
		}
		if t > res.Elapsed {
			t = res.Elapsed
		}
		return t
	}
	var marks []mark
	tail := "run"
	if v, ok := res.Details["p1_seconds"]; ok {
		marks = append(marks, mark{"phase1", toTime(v)})
		tail = "phase2"
	}
	if v, ok := res.Details["shuffle_seconds"]; ok {
		marks = append(marks, mark{"shuffle", toTime(v)})
		tail = "finish"
	}
	for pass := 1; ; pass++ {
		v, ok := res.Details[passKey(pass)]
		if !ok {
			break
		}
		marks = append(marks, mark{fmt.Sprintf("pass%d", pass), toTime(v)})
		tail = "finish"
	}
	sort.Slice(marks, func(i, j int) bool { return marks[i].end < marks[j].end })
	pr := s.Register("task", res.Task.String())
	if !pr.On() {
		return
	}
	start := sim.Time(0)
	for _, m := range marks {
		if m.end > start {
			pr.Span(pr.KindNamed(m.name), int64(start), int64(m.end))
			start = m.end
		}
	}
	if res.Elapsed > start {
		pr.Span(pr.KindNamed(tail), int64(start), int64(res.Elapsed))
	}
}

// perNodeBytes splits total across n nodes, rounded up to whole I/O
// chunks so every node's partition is request-aligned.
func perNodeBytes(total int64, n int) int64 {
	per := (total + int64(n) - 1) / int64(n)
	if rem := per % ioChunk; rem != 0 {
		per += ioChunk - rem
	}
	return per
}

// tuplesIn converts a byte count to tuples of the dataset's width.
func tuplesIn(bytes int64, tupleBytes int) int64 {
	if tupleBytes <= 0 {
		return 0
	}
	n := bytes / int64(tupleBytes)
	if n < 1 && bytes > 0 {
		n = 1
	}
	return n
}

// alignSector rounds bytes up to a 512-byte disk sector.
func alignSector(b int64) int64 {
	const s = 512
	if rem := b % s; rem != 0 {
		b += s - rem
	}
	return b
}

// chunksOf iterates [0, total) in ioChunk pieces, calling fn(offset, n).
func chunksOf(total int64, fn func(off, n int64)) {
	for off := int64(0); off < total; off += ioChunk {
		n := ioChunk
		if total-off < int64(n) {
			fn(off, alignSector(total-off))
			return
		}
		fn(off, int64(n))
	}
}

// baseBytes returns the mview base-relation size: the 15 GB dataset
// minus the stored derived relations and the delta batch.
func baseBytes(ds workload.Dataset) int64 {
	b := ds.TotalBytes - ds.DerivedBytes - ds.DeltaBytes
	if b < 0 {
		b = ds.TotalBytes
	}
	return b
}

// passKey names the per-pass timestamp detail for mining passes.
func passKey(pass int) string {
	return fmt.Sprintf("pass%d_end_seconds", pass)
}
