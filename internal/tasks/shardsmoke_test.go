package tasks

import (
	"fmt"
	"testing"

	"howsim/internal/arch"
	"howsim/internal/probe"
	"howsim/internal/sim"
	"howsim/internal/workload"
)

// setMode switches the package-level execution mode for one test. The
// tasks tests never call t.Parallel, so the global is safe to flip.
func setMode(t *testing.T, mode sim.ExecMode) {
	t.Helper()
	prev := sim.DefaultExecMode
	sim.DefaultExecMode = mode
	t.Cleanup(func() { sim.DefaultExecMode = prev })
}

// TestShardedTasksMatchEvent is the in-package sharded smoke: every
// shardable task runs under ModeParallel and must reproduce the
// single-kernel event run's elapsed time and details exactly. The CI
// race job runs ./internal/... with -race, so this also exercises the
// cross-shard rendezvous under the race detector (the root-package
// equivalence tests, which additionally diff probe output, are not in
// that job's package set).
func TestShardedTasksMatchEvent(t *testing.T) {
	for _, task := range []workload.TaskID{
		workload.Select, workload.Aggregate, workload.GroupBy, workload.DataCube,
	} {
		task := task
		t.Run(task.String(), func(t *testing.T) {
			ds := scaled(task, 48<<20)
			cfg := arch.ActiveDisks(8)
			setMode(t, sim.ModeEvent)
			want := RunDataset(cfg, task, ds)
			setMode(t, sim.ModeParallel)
			got := RunDataset(cfg, task, ds)
			if got.Elapsed != want.Elapsed {
				t.Errorf("elapsed = %v, want %v", got.Elapsed, want.Elapsed)
			}
			if fmt.Sprint(got.Details) != fmt.Sprint(want.Details) {
				t.Errorf("details diverged:\n parallel %v\n event    %v", got.Details, want.Details)
			}
		})
	}
}

// TestShardedProbeMerge checks that a probed sharded run merges every
// leaf sink into the caller's sink: the per-disk diskos instances must
// be present and carry spans.
func TestShardedProbeMerge(t *testing.T) {
	setMode(t, sim.ModeParallel)
	sink := probe.NewSink()
	sink.SetEnabled(true)
	res := RunDatasetProbed(arch.ActiveDisks(4), workload.Select, scaled(workload.Select, 48<<20), nil, sink)
	if res.Elapsed <= 0 {
		t.Fatalf("elapsed = %v", res.Elapsed)
	}
	disks := map[string]bool{}
	for i := 0; i < sink.Instances(); i++ {
		if comp, name := sink.Instance(i); comp == "diskos" {
			disks[name] = true
		}
	}
	for i := 0; i < 4; i++ {
		if !disks[fmt.Sprintf("ad%d", i)] {
			t.Errorf("merged sink is missing the diskos ad%d instance (have %v)", i, disks)
		}
	}
	if sink.SpansRecorded() == 0 {
		t.Error("merged sink recorded no spans")
	}
}

// TestShardedFallbacks pins the fallback rule: non-shardable tasks and
// faulted runs complete under ModeParallel via the single-kernel path.
func TestShardedFallbacks(t *testing.T) {
	setMode(t, sim.ModeParallel)
	res := RunDataset(arch.ActiveDisks(4), workload.Sort, scaled(workload.Sort, 48<<20))
	if res.Elapsed <= 0 {
		t.Fatalf("sort under ModeParallel: elapsed = %v", res.Elapsed)
	}
	res = RunDataset(arch.Cluster(4), workload.Select, scaled(workload.Select, 48<<20))
	if res.Elapsed <= 0 {
		t.Fatalf("cluster select under ModeParallel: elapsed = %v", res.Elapsed)
	}
}
