package tasks

// Background replica rebuild: after the plan's permanent disk failure,
// the surviving replica streams the lost partition onto the declared
// hot spare, chunk by chunk, contending with the foreground scan for
// the replica holder's media and the FC loop. The run's elapsed time
// extends to the rebuild's completion, so a faulted run exposes the
// classic rebuild-time vs. degraded-throughput tradeoff directly in its
// figures and FaultReport (stats.RebuildStats).

import (
	"howsim/internal/diskos"
	"howsim/internal/fault"
	"howsim/internal/probe"
	"howsim/internal/sim"
	"howsim/internal/workload"
)

// rebuildState records what the background rebuild moved; faultEpilogue
// folds it into the FaultReport.
type rebuildState struct {
	ran        bool
	spare      string
	bytes      int64
	start, end sim.Time
}

// spawnRebuild starts the rebuild disklet when the plan declares a
// spare (which requires a replica and a fail clause — enforced by
// ParsePlan — and a provisioned System.Spare). The disklet sleeps until
// the failure, then copies the failed disk's partition from the replica
// region of the surviving peer onto the spare. Every chunk is a real
// simulated read, loop crossing and write, so the rebuild and the
// foreground scan slow each other down exactly as a live array would.
// A rebuild-rate plan key caps the stream at that many MB/s, trading a
// longer rebuild window for lighter foreground interference.
func spawnRebuild(k *sim.Kernel, s *diskos.System, ds workload.Dataset,
	plan *fault.Plan, rb *rebuildState) {
	d := len(s.Disks)
	if plan == nil || !plan.Spare || !plan.Replica || s.Spare == nil ||
		plan.FailDisk < 0 || plan.FailDisk >= d || d < 2 {
		return
	}
	pr := k.Probe().Register("recovery", "rebuild")
	readKind := pr.KindNamed("rebuild_read")
	writeKind := pr.KindNamed("rebuild_write")
	per := perNodeBytes(ds.TotalBytes, d)
	replicaRegion := replicaRegionOf(s.Disks[0].Disk.Capacity())
	src := s.Disks[(plan.FailDisk+1)%d]
	k.Spawn("rebuild", func(p *sim.Proc) {
		if plan.FailAt > p.Now() {
			p.Delay(plan.FailAt - p.Now())
		}
		rb.ran, rb.spare, rb.start = true, s.Spare.Name(), p.Now()
		for off := int64(0); off < per; {
			n := int64(ioChunk)
			if per-off < n {
				n = alignSector(per - off)
			}
			chunkStart := p.Now()
			rs := pr.Begin(readKind, probe.Time(p.Now()))
			err := src.ReadLocal(p, replicaRegion+off, n)
			if pr.On() {
				pr.EndArg(readKind, rs, int64(p.Now()), n)
			}
			if err != nil {
				// The replica holder is gone too; nothing left to rebuild
				// from. The shortfall shows as Rebuild.Bytes < partition.
				break
			}
			s.RebuildTransfer(p, src.ID, plan.FailDisk, n)
			ws := pr.Begin(writeKind, probe.Time(p.Now()))
			s.Spare.Write(p, off, n)
			if pr.On() {
				pr.EndArg(writeKind, ws, int64(p.Now()), n)
			}
			rb.bytes += n
			off += n
			// rebuild-rate cap: if the chunk moved faster than the plan's
			// MB/s budget, idle out the remainder so the stream never
			// exceeds the cap, leaving the media and loop to the scan.
			if floor := plan.RebuildChunkTime(n); floor > 0 {
				if took := p.Now() - chunkStart; took < floor {
					p.Delay(floor - took)
				}
			}
		}
		rb.end = p.Now()
	})
}
