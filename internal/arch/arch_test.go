package arch

import (
	"testing"

	"howsim/internal/sim"
)

func TestBaselineConfigs(t *testing.T) {
	a := ActiveDisks(64)
	if a.Kind != KindActiveDisk || a.Disks != 64 || a.LoopBytesPerSec != 100e6 ||
		a.DiskMemBytes != 32<<20 || !a.DirectComm || a.FrontEndHz != 450e6 {
		t.Errorf("ActiveDisks baseline = %+v", a)
	}
	c := Cluster(32)
	if c.Kind != KindCluster || c.Disks != 32 {
		t.Errorf("Cluster baseline = %+v", c)
	}
	s := SMP(128)
	if s.Kind != KindSMP || s.LoopBytesPerSec != 100e6 {
		t.Errorf("SMP baseline = %+v", s)
	}
}

func TestVariantMethods(t *testing.T) {
	c := ActiveDisks(16).WithFastIO()
	if c.LoopBytesPerSec != 200e6 {
		t.Error("WithFastIO did not double the loop rate")
	}
	if c = ActiveDisks(16).WithDiskMemory(128 << 20); c.DiskMemBytes != 128<<20 {
		t.Error("WithDiskMemory not applied")
	}
	if c = ActiveDisks(16).WithFrontEndOnly(); c.DirectComm {
		t.Error("WithFrontEndOnly not applied")
	}
	if c = ActiveDisks(16).WithFastDisk(); !c.FastDisk {
		t.Error("WithFastDisk not applied")
	}
	if c = ActiveDisks(16).WithFrontEnd(1e9); c.FrontEndHz != 1e9 {
		t.Error("WithFrontEnd not applied")
	}
}

func TestNames(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{ActiveDisks(64), "active-64"},
		{ActiveDisks(64).WithFastIO(), "active-64-fastio"},
		{ActiveDisks(64).WithDiskMemory(64 << 20), "active-64-64mb"},
		{ActiveDisks(64).WithFrontEndOnly(), "active-64-feonly"},
		{Cluster(128), "cluster-128"},
		{SMP(16).WithFastDisk(), "smp-16-fastdisk"},
	}
	for _, c := range cases {
		if got := c.cfg.Name(); got != c.want {
			t.Errorf("Name() = %q, want %q", got, c.want)
		}
	}
}

func TestStudiedSizes(t *testing.T) {
	want := []int{16, 32, 64, 128}
	got := StudiedSizes()
	if len(got) != len(want) {
		t.Fatalf("StudiedSizes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("StudiedSizes = %v, want %v", got, want)
		}
	}
}

func TestBuilders(t *testing.T) {
	k := sim.NewKernel()
	ad := ActiveDisks(4).BuildActive(k)
	if len(ad.Disks) != 4 {
		t.Errorf("Active build has %d disks", len(ad.Disks))
	}
	cl := Cluster(4).BuildCluster(sim.NewKernel())
	if len(cl.Nodes) != 4 {
		t.Errorf("cluster build has %d nodes", len(cl.Nodes))
	}
	sm := SMP(4).BuildSMP(sim.NewKernel())
	if len(sm.CPUs) != 4 || len(sm.Disks) != 4 {
		t.Errorf("SMP build has %d cpus, %d disks", len(sm.CPUs), len(sm.Disks))
	}
}

func TestBuildKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("building the wrong kind should panic")
		}
	}()
	Cluster(4).BuildActive(sim.NewKernel())
}

func TestFastDiskSpec(t *testing.T) {
	k := sim.NewKernel()
	base := ActiveDisks(2).BuildActive(k)
	fast := ActiveDisks(2).WithFastDisk().BuildActive(sim.NewKernel())
	if fast.Disks[0].Disk.Spec().RPM <= base.Disks[0].Disk.Spec().RPM {
		t.Error("Fast Disk variant should spin faster")
	}
}

func TestWithFibreSwitch(t *testing.T) {
	c := ActiveDisks(128).WithFibreSwitch(8)
	if c.SwitchedLoops != 8 {
		t.Error("WithFibreSwitch not applied")
	}
	if c.Name() != "active-128-fsw8" {
		t.Errorf("Name() = %q", c.Name())
	}
	s := c.BuildActive(sim.NewKernel())
	if s.Loops() != 8 {
		t.Errorf("built system has %d loops, want 8", s.Loops())
	}
}
