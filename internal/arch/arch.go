// Package arch assembles the three architectures the paper compares —
// Active Disk farms, commodity PC clusters, and SMP-based disk farms —
// at the studied sizes (16, 32, 64, 128 disks) and exposes every design
// knob the evaluation varies: I/O interconnect bandwidth (200 vs
// 400 MB/s), per-disk memory (32/64/128 MB), communication architecture
// (direct disk-to-disk vs front-end relay), front-end clock, and the
// "Fast Disk" drive upgrade.
package arch

import (
	"fmt"

	"howsim/internal/cluster"
	"howsim/internal/disk"
	"howsim/internal/diskos"
	"howsim/internal/sim"
	"howsim/internal/smp"
)

// Kind selects one of the three architectures.
type Kind int

// The architectures under comparison.
const (
	KindActiveDisk Kind = iota
	KindCluster
	KindSMP
)

// String returns the architecture's display name.
func (k Kind) String() string {
	switch k {
	case KindActiveDisk:
		return "active"
	case KindCluster:
		return "cluster"
	case KindSMP:
		return "smp"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// StudiedSizes returns the configuration sizes of the core experiments.
func StudiedSizes() []int { return []int{16, 32, 64, 128} }

// Config is one machine configuration. Zero-valued knobs are filled with
// the paper's baseline by the constructors; use the With* methods for
// the variants.
type Config struct {
	Kind  Kind
	Disks int
	// FastDisk upgrades the drives to the Hitachi DK3E1T-91.
	FastDisk bool
	// LoopBytesPerSec is the per-loop FC rate for Active Disk and SMP
	// configurations (100e6 baseline; 200e6 is the "Fast I/O" variant).
	LoopBytesPerSec float64
	// DiskMemBytes is the Active Disk per-drive memory (32/64/128 MB).
	DiskMemBytes int64
	// DirectComm permits disk-to-disk transfers on Active Disks.
	DirectComm bool
	// FrontEndHz is the Active Disk front-end clock (450 MHz or 1 GHz).
	FrontEndHz float64
	// SwitchedLoops splits the Active Disk farm across this many dual
	// loops joined by a non-blocking FibreSwitch (the paper's
	// future-work recommendation for configurations beyond 64 disks).
	// 0 or 1 is the baseline single shared loop.
	SwitchedLoops int
	// EmbeddedHz is the Active Disk embedded processor clock (200 MHz
	// baseline; the paper argues this "will evolve as the disk drives
	// evolve").
	EmbeddedHz float64
	// DegradedDisks injects that many straggler drives (disks 0..n-1)
	// derated to DegradeFactor of nominal performance.
	DegradedDisks int
	// DegradeFactor is the straggler drives' performance fraction.
	DegradeFactor float64
}

// ActiveDisks returns the baseline Active Disk configuration with n
// drives.
func ActiveDisks(n int) Config {
	return Config{Kind: KindActiveDisk, Disks: n, LoopBytesPerSec: 100e6,
		DiskMemBytes: 32 << 20, DirectComm: true, FrontEndHz: 450e6,
		EmbeddedHz: 200e6}
}

// Cluster returns the baseline commodity-cluster configuration with n
// nodes (one disk each).
func Cluster(n int) Config {
	return Config{Kind: KindCluster, Disks: n}
}

// SMP returns the baseline SMP configuration with n processors and n
// disks.
func SMP(n int) Config {
	return Config{Kind: KindSMP, Disks: n, LoopBytesPerSec: 100e6}
}

// WithFastIO doubles the serial I/O interconnect to 400 MB/s aggregate.
func (c Config) WithFastIO() Config {
	c.LoopBytesPerSec = 200e6
	return c
}

// WithDiskMemory sets the Active Disk per-drive memory.
func (c Config) WithDiskMemory(bytes int64) Config {
	c.DiskMemBytes = bytes
	return c
}

// WithFrontEndOnly restricts Active Disk communication to pass through
// the front-end host (the Figure 5 experiment).
func (c Config) WithFrontEndOnly() Config {
	c.DirectComm = false
	return c
}

// WithFastDisk upgrades the drives to the Hitachi DK3E1T-91.
func (c Config) WithFastDisk() Config {
	c.FastDisk = true
	return c
}

// WithFrontEnd sets the Active Disk front-end clock.
func (c Config) WithFrontEnd(hz float64) Config {
	c.FrontEndHz = hz
	return c
}

// WithFibreSwitch splits the Active Disk farm across the given number
// of dual loops joined by a non-blocking FibreSwitch.
func (c Config) WithFibreSwitch(loops int) Config {
	c.SwitchedLoops = loops
	return c
}

// WithEmbeddedCPU sets the Active Disk embedded processor clock.
func (c Config) WithEmbeddedCPU(hz float64) Config {
	c.EmbeddedHz = hz
	return c
}

// WithDegradedDisks injects n straggler drives running at factor of
// nominal performance (failure-injection studies).
func (c Config) WithDegradedDisks(n int, factor float64) Config {
	c.DegradedDisks = n
	c.DegradeFactor = factor
	return c
}

// specFor builds the per-disk spec override for degraded farms, or nil
// for uniform ones.
func (c Config) specFor() func(int) *disk.Spec {
	if c.DegradedDisks <= 0 || c.DegradeFactor <= 0 || c.DegradeFactor >= 1 {
		return nil
	}
	slow := disk.Derated(c.spec(), c.DegradeFactor)
	n := c.DegradedDisks
	return func(i int) *disk.Spec {
		if i < n {
			return slow
		}
		return nil
	}
}

// spec returns the drive specification for this configuration.
func (c Config) spec() *disk.Spec {
	if c.FastDisk {
		return disk.HitachiDK3E1T91()
	}
	return disk.Cheetah9LP()
}

// Name returns a compact label, e.g. "active-64" or "smp-128-fastio".
func (c Config) Name() string {
	name := fmt.Sprintf("%s-%d", c.Kind, c.Disks)
	if c.LoopBytesPerSec == 200e6 {
		name += "-fastio"
	}
	if c.FastDisk {
		name += "-fastdisk"
	}
	if c.Kind == KindActiveDisk {
		if c.DiskMemBytes != 32<<20 {
			name += fmt.Sprintf("-%dmb", c.DiskMemBytes>>20)
		}
		if !c.DirectComm {
			name += "-feonly"
		}
		if c.SwitchedLoops > 1 {
			name += fmt.Sprintf("-fsw%d", c.SwitchedLoops)
		}
	}
	return name
}

// BuildActive constructs the Active Disk system for this configuration.
func (c Config) BuildActive(k *sim.Kernel) *diskos.System {
	if c.Kind != KindActiveDisk {
		panic("arch: BuildActive on a non-Active configuration")
	}
	cfg := diskos.DefaultConfig(c.Disks)
	cfg.DiskSpec = c.spec()
	cfg.LoopBytesPerSec = c.LoopBytesPerSec
	cfg.DiskMemBytes = c.DiskMemBytes
	cfg.DirectComm = c.DirectComm
	cfg.FrontEndHz = c.FrontEndHz
	cfg.SwitchedLoops = c.SwitchedLoops
	if c.EmbeddedHz > 0 {
		cfg.EmbeddedHz = c.EmbeddedHz
	}
	cfg.SpecFor = c.specFor()
	return diskos.NewSystem(k, cfg)
}

// BuildActiveSharded constructs the Active Disk system for this
// configuration partitioned across a ShardGroup: interconnect and
// front-end on the hub, one disk per shard. The group must have
// c.Disks shards.
func (c Config) BuildActiveSharded(g *sim.ShardGroup) *diskos.System {
	if c.Kind != KindActiveDisk {
		panic("arch: BuildActiveSharded on a non-Active configuration")
	}
	cfg := diskos.DefaultConfig(c.Disks)
	cfg.DiskSpec = c.spec()
	cfg.LoopBytesPerSec = c.LoopBytesPerSec
	cfg.DiskMemBytes = c.DiskMemBytes
	cfg.DirectComm = c.DirectComm
	cfg.FrontEndHz = c.FrontEndHz
	cfg.SwitchedLoops = c.SwitchedLoops
	if c.EmbeddedHz > 0 {
		cfg.EmbeddedHz = c.EmbeddedHz
	}
	cfg.SpecFor = c.specFor()
	return diskos.NewSystemSharded(g, cfg)
}

// BuildCluster constructs the cluster for this configuration.
func (c Config) BuildCluster(k *sim.Kernel) *cluster.Machine {
	if c.Kind != KindCluster {
		panic("arch: BuildCluster on a non-cluster configuration")
	}
	cfg := cluster.DefaultConfig(c.Disks)
	cfg.DiskSpec = c.spec()
	cfg.SpecFor = c.specFor()
	return cluster.New(k, cfg)
}

// BuildSMP constructs the SMP for this configuration.
func (c Config) BuildSMP(k *sim.Kernel) *smp.Machine {
	if c.Kind != KindSMP {
		panic("arch: BuildSMP on a non-SMP configuration")
	}
	cfg := smp.DefaultConfig(c.Disks)
	cfg.DiskSpec = c.spec()
	cfg.SpecFor = c.specFor()
	cfg.LoopBytesPerSec = c.LoopBytesPerSec
	return smp.New(k, cfg)
}
