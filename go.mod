module howsim

go 1.22
