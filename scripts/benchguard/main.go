// Command benchguard compares a freshly measured benchmark report
// against the committed baseline and fails if a guarded benchmark
// regressed past the tolerance. CI runs it after the bench-smoke pass:
//
//	go run ./scripts/benchkernel -count 1 -out /tmp/BENCH_kernel.json
//	go run ./scripts/benchguard -baseline BENCH_kernel.json -current /tmp/BENCH_kernel.json
//
// Only ns/op is gated (with a generous default tolerance — CI runners
// are noisy); allocs/op is gated exactly, because the kernel's hot
// paths are designed to be allocation-free and any new allocation is a
// real change, not noise.
//
// With -parallel, benchguard additionally gates the sharded-execution
// speedup recorded by scripts/benchparallel. The gate engages only when
// the report was measured on a machine with at least -mincpu cores
// (both num_cpu and gomaxprocs): a speedup floor is meaningless on a
// single-core runner, where the conservative sync protocol can at best
// break even.
//
// With -service, benchguard additionally gates the howsimd service
// path recorded by scripts/benchservice against -servicebaseline: the
// warm cache hit's ns/op (with tolerance) and its allocs/op (exactly —
// a cache hit is a map lookup plus a write of pre-rendered bytes, and
// any new allocation on that path is a real change, not noise).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"howsim/internal/benchfmt"
)

// parallelReport mirrors the fields of scripts/benchparallel's output
// that the speedup gate reads.
type parallelReport struct {
	NumCPU     int     `json:"num_cpu"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Task       string  `json:"task"`
	Disks      int     `json:"disks"`
	SingleMs   float64 `json:"single_ms"`
	ParallelMs float64 `json:"parallel_ms"`
	Speedup    float64 `json:"speedup"`
}

// gateParallel applies the speedup floor, per task, to a benchparallel
// report — either the current array-of-rows shape or the legacy single
// select-only object — and reports whether any task failed its gate.
func gateParallel(path string, minSpeedup float64, minCPU int) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		return true
	}
	var rows []parallelReport
	if err := json.Unmarshal(data, &rows); err != nil {
		var single parallelReport
		if err2 := json.Unmarshal(data, &single); err2 != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %s: %v\n", path, err)
			return true
		}
		rows = []parallelReport{single}
	}
	if len(rows) == 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %s: no parallel rows\n", path)
		return true
	}
	failed := false
	for _, rep := range rows {
		if gateParallelRow(&rep, minSpeedup, minCPU) {
			failed = true
		}
	}
	return failed
}

// gateParallelRow applies the speedup floor to one per-task row and
// reports whether the gate failed.
func gateParallelRow(rep *parallelReport, minSpeedup float64, minCPU int) bool {
	cores := rep.NumCPU
	if rep.GoMaxProcs < cores {
		cores = rep.GoMaxProcs
	}
	if cores < minCPU {
		fmt.Printf("%-40s %.2fx on %d core(s) — speedup gate skipped (needs >= %d cores)\n",
			"parallel "+rep.Task, rep.Speedup, cores, minCPU)
		return false
	}
	verdict := "ok"
	failed := false
	if rep.Speedup < minSpeedup {
		verdict = "REGRESSED"
		failed = true
	}
	fmt.Printf("%-40s %.1f ms single / %.1f ms parallel = %.2fx on %d cores (floor %.1fx)  %s\n",
		fmt.Sprintf("parallel %s x%d disks", rep.Task, rep.Disks),
		rep.SingleMs, rep.ParallelMs, rep.Speedup, cores, minSpeedup, verdict)
	return failed
}

// gateService compares the service-path report against its committed
// baseline: warm-hit ns/op within tolerance, warm-hit allocs/op not
// growing. Reports whether the gate failed.
func gateService(baselinePath, currentPath string, tolerance float64) bool {
	baseline, err := benchfmt.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		return true
	}
	current, err := benchfmt.ReadFile(currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		return true
	}
	const name = "BenchmarkServiceWarmHit"
	base, ok := baseline.Find(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "benchguard: %s missing from baseline %s\n", name, baselinePath)
		return true
	}
	cur, ok := current.Find(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "benchguard: %s missing from current %s\n", name, currentPath)
		return true
	}
	failed := false
	limit := base.NsPerOp * (1 + tolerance)
	verdict := "ok"
	if cur.NsPerOp > limit {
		verdict = "REGRESSED"
		failed = true
	}
	fmt.Printf("%-40s baseline %.1f ns/op  current %.1f ns/op  limit %.1f  %s\n",
		name, base.NsPerOp, cur.NsPerOp, limit, verdict)
	if cur.AllocsPerOp > base.AllocsPerOp {
		fmt.Printf("%-40s allocs/op grew %.0f -> %.0f  REGRESSED\n",
			name, base.AllocsPerOp, cur.AllocsPerOp)
		failed = true
	}
	return failed
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_kernel.json", "committed baseline report")
		currentPath  = flag.String("current", "/tmp/BENCH_kernel.json", "freshly measured report")
		names        = flag.String("guard", "BenchmarkKernelEventThroughput", "comma-separated benchmarks to gate")
		tolerance    = flag.Float64("tolerance", 0.25, "allowed fractional ns/op regression")
		zeroAlloc    = flag.String("zeroalloc",
			"BenchmarkKernelEventThroughputProbeOff,BenchmarkKernelPipeTransferProbeOff,BenchmarkKernelPipeTransferProbeOn",
			"comma-separated benchmarks that must report exactly 0 allocs/op in the current report")
		parallelPath = flag.String("parallel", "", "benchparallel report to gate (empty = no speedup gate)")
		minSpeedup   = flag.Float64("minspeedup", 2.0, "required parallel speedup when measured on >= -mincpu cores")
		minCPU       = flag.Int("mincpu", 4, "minimum cores for the speedup gate to engage")
		servicePath  = flag.String("service", "", "benchservice report to gate (empty = no service gate)")
		serviceBase  = flag.String("servicebaseline", "BENCH_service.json", "committed service baseline report")
	)
	flag.Parse()

	baseline, err := benchfmt.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
	current, err := benchfmt.ReadFile(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}

	failed := false
	for _, name := range strings.Split(*names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		base, ok := baseline.Find(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchguard: %s missing from baseline %s\n", name, *baselinePath)
			failed = true
			continue
		}
		cur, ok := current.Find(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchguard: %s missing from current %s\n", name, *currentPath)
			failed = true
			continue
		}
		limit := base.NsPerOp * (1 + *tolerance)
		verdict := "ok"
		if cur.NsPerOp > limit {
			verdict = "REGRESSED"
			failed = true
		}
		fmt.Printf("%-40s baseline %.1f ns/op  current %.1f ns/op  limit %.1f  %s\n",
			name, base.NsPerOp, cur.NsPerOp, limit, verdict)
		if cur.AllocsPerOp > base.AllocsPerOp {
			fmt.Printf("%-40s allocs/op grew %.0f -> %.0f  REGRESSED\n",
				name, base.AllocsPerOp, cur.AllocsPerOp)
			failed = true
		}
	}
	// The zero-alloc gate is absolute, not baseline-relative: the probe
	// layer's contract is that a sink attached to the kernel costs no
	// allocation on the hot paths — disabled or (in steady state) enabled.
	for _, name := range strings.Split(*zeroAlloc, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		cur, ok := current.Find(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchguard: %s missing from current %s\n", name, *currentPath)
			failed = true
			continue
		}
		verdict := "ok"
		if cur.AllocsPerOp != 0 {
			verdict = "REGRESSED"
			failed = true
		}
		fmt.Printf("%-40s allocs/op %.0f (must be 0)  %s\n", name, cur.AllocsPerOp, verdict)
	}
	if *parallelPath != "" && gateParallel(*parallelPath, *minSpeedup, *minCPU) {
		failed = true
	}
	if *servicePath != "" && gateService(*serviceBase, *servicePath, *tolerance) {
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}
