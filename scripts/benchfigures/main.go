// Command benchfigures runs the end-to-end figure benchmarks (the root
// package's BenchmarkFigure* — each renders one of the paper's figures)
// at reduced dataset scale and writes the wall-clock results as JSON
// (default BENCH_figures.json), the figure-level counterpart of
// BENCH_kernel.json:
//
//	go run ./scripts/benchfigures           # or: make benchfigures
//	go run ./scripts/benchfigures -scale 0.02 -count 3 -out /tmp/f.json
//
// Figure times are dominated by simulated-event volume, so they move
// when the kernel's event path does — the JSON records whether a hot
// path change actually shows up at figure granularity.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"

	"howsim/internal/benchfmt"
)

func main() {
	var (
		out     = flag.String("out", "BENCH_figures.json", "output file")
		pattern = flag.String("bench", "BenchmarkFigure", "benchmark regexp")
		pkg     = flag.String("pkg", ".", "package to benchmark")
		scale   = flag.Float64("scale", 0.05, "HOWSIM_BENCH_SCALE dataset scale factor")
		count   = flag.Int("count", 1, "benchmark repetitions (best ns/op wins)")
	)
	flag.Parse()

	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", *pattern, "-benchtime", "1x", "-benchmem",
		"-count", strconv.Itoa(*count), *pkg)
	cmd.Env = append(os.Environ(), fmt.Sprintf("HOWSIM_BENCH_SCALE=%g", *scale))
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchfigures: go test failed: %v\n%s", err, raw)
		os.Exit(1)
	}

	rep := benchfmt.NewReport(*pkg, *pattern, *count)
	rep.Benchmarks = benchfmt.ParseOutput(raw)
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchfigures: no benchmark lines parsed")
		os.Exit(1)
	}
	if err := rep.WriteFile(*out); err != nil {
		fmt.Fprintln(os.Stderr, "benchfigures:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks, scale %g)\n", *out, len(rep.Benchmarks), *scale)
}
