// Command benchservice runs the howsimd service-path load benchmarks
// (cold-path admission, warm cache hit, dedup fan-out) and writes the
// results as JSON (default BENCH_service.json) so the service overhead
// trajectory can be tracked across PRs:
//
//	go run ./scripts/benchservice            # or: make bench-service
//	go run ./scripts/benchservice -count 3 -out /tmp/s.json
//
// The benchmarks use an instant stub runner, so the numbers isolate
// the service layer — request decode, canonical hashing, cache and
// singleflight, worker-pool round trip — from simulation cost.
// benchguard gates the warm-hit latency and allocations against the
// committed baseline.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"

	"howsim/internal/benchfmt"
)

func main() {
	var (
		out     = flag.String("out", "BENCH_service.json", "output file")
		pattern = flag.String("bench", "BenchmarkService", "benchmark regexp")
		pkg     = flag.String("pkg", "./internal/service", "package to benchmark")
		count   = flag.Int("count", 1, "benchmark repetitions (best ns/op wins)")
	)
	flag.Parse()

	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", *pattern, "-benchmem", "-count", strconv.Itoa(*count), *pkg)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchservice: go test failed: %v\n%s", err, raw)
		os.Exit(1)
	}

	rep := benchfmt.NewReport(*pkg, *pattern, *count)
	rep.Benchmarks = benchfmt.ParseOutput(raw)
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchservice: no benchmark lines parsed")
		os.Exit(1)
	}
	if err := rep.WriteFile(*out); err != nil {
		fmt.Fprintln(os.Stderr, "benchservice:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))
}
