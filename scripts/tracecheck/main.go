// Command tracecheck validates Chrome trace_event JSON files produced
// by the probe exporter: each file must parse as a JSON array, contain
// at least one complete ("X") span with non-negative timestamps, and
// carry the process/thread metadata chrome://tracing needs to label
// the timeline. CI's trace-smoke step runs it over the trace artifacts
// so a malformed exporter change fails loudly instead of shipping an
// unloadable file.
//
//	tracecheck trace.json [more.json ...]
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
)

type event struct {
	Ph   string      `json:"ph"`
	Pid  int         `json:"pid"`
	Tid  int         `json:"tid"`
	Ts   json.Number `json:"ts"`
	Dur  json.Number `json:"dur"`
	Cat  string      `json:"cat"`
	Name string      `json:"name"`
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck trace.json [more.json ...]")
		os.Exit(2)
	}
	failed := false
	for _, path := range os.Args[1:] {
		if err := check(path); err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func check(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var events []event
	if err := json.Unmarshal(data, &events); err != nil {
		return fmt.Errorf("not a JSON event array: %w", err)
	}
	var spans, procMeta, threadMeta int
	cats := map[string]int{}
	for i, e := range events {
		switch e.Ph {
		case "M":
			switch e.Name {
			case "process_name":
				procMeta++
			case "thread_name":
				threadMeta++
			}
		case "X":
			spans++
			cats[e.Cat]++
			for _, f := range []struct {
				name string
				v    json.Number
			}{{"ts", e.Ts}, {"dur", e.Dur}} {
				t, err := strconv.ParseFloat(f.v.String(), 64)
				if err != nil {
					return fmt.Errorf("event %d: bad %s %q: %v", i, f.name, f.v, err)
				}
				if t < 0 {
					return fmt.Errorf("event %d: negative %s %q", i, f.name, f.v)
				}
			}
			if e.Name == "" || e.Cat == "" {
				return fmt.Errorf("event %d: span missing name/cat", i)
			}
		case "":
			return fmt.Errorf("event %d: missing ph", i)
		}
	}
	if procMeta == 0 {
		return fmt.Errorf("no process_name metadata")
	}
	if threadMeta == 0 {
		return fmt.Errorf("no thread_name metadata")
	}
	if spans == 0 {
		return fmt.Errorf("no complete events")
	}
	if cats["sched"] > 0 {
		return fmt.Errorf("%d scheduler spans leaked into the trace", cats["sched"])
	}
	fmt.Printf("%s: ok (%d events, %d spans, %d threads", path, len(events), spans, threadMeta)
	for _, c := range []string{"disk", "link", "cpu", "task", "diskos"} {
		if cats[c] > 0 {
			fmt.Printf(", %s:%d", c, cats[c])
		}
	}
	fmt.Println(")")
	return nil
}
