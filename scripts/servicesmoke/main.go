// Command servicesmoke is the end-to-end check CI runs against a real
// howsimd process: build the binary, start it, simulate the same
// config twice (asserting the repeat is a cache hit with a
// byte-identical body), run a sweep, verify /statsz accounting, then
// SIGTERM it and require a clean drain.
//
//	go run ./scripts/servicesmoke            # or: make service-smoke
//	go run ./scripts/servicesmoke -port 18089 -keep-binary /tmp/howsimd
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "servicesmoke: "+format+"\n", args...)
	os.Exit(1)
}

// post sends a JSON body and returns status, body, cache header.
func post(url, body string) (int, []byte, string, error) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, nil, "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp.StatusCode, b, resp.Header.Get("X-Howsim-Cache"), err
}

func main() {
	var (
		port = flag.Int("port", 18089, "port to run the smoke instance on")
		bin  = flag.String("keep-binary", "/tmp/howsimd-smoke", "where to build the howsimd binary")
	)
	flag.Parse()

	build := exec.Command("go", "build", "-o", *bin, "./cmd/howsimd")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		fail("build: %v", err)
	}

	addr := fmt.Sprintf("127.0.0.1:%d", *port)
	base := "http://" + addr
	var stderr bytes.Buffer
	srv := exec.Command(*bin, "-addr", addr, "-workers", "2", "-queue", "8", "-timeout", "60s")
	srv.Stderr = &stderr
	if err := srv.Start(); err != nil {
		fail("start: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Wait() }()
	defer srv.Process.Kill()

	// Wait for the listener.
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			fail("server never became healthy; stderr:\n%s", stderr.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Cold simulate, then the identical request again: the repeat must
	// be a cache hit and the bodies must be byte-identical.
	simBody := `{"task":"select","arch":"active","disks":4,"scale":0.002,"breakdown":true}`
	st, cold, src, err := post(base+"/v1/simulate", simBody)
	if err != nil || st != http.StatusOK {
		fail("cold simulate: status=%d err=%v body=%s", st, err, cold)
	}
	if src != "miss" {
		fail("cold simulate disposition %q, want miss", src)
	}
	st, warm, src, err := post(base+"/v1/simulate", simBody)
	if err != nil || st != http.StatusOK {
		fail("warm simulate: status=%d err=%v", st, err)
	}
	if src != "hit" {
		fail("warm simulate disposition %q, want hit", src)
	}
	if !bytes.Equal(cold, warm) {
		fail("warm body differs from cold:\n%s\nvs\n%s", cold, warm)
	}
	fmt.Println("simulate: cold miss + warm hit, byte-identical bodies")

	// A small sweep across two sizes.
	st, sweep, _, err := post(base+"/v1/sweep", `{"task":"select","arch":"active","scale":0.002,"sizes":[2,4]}`)
	if err != nil || st != http.StatusOK {
		fail("sweep: status=%d err=%v body=%s", st, err, sweep)
	}
	if !bytes.Contains(sweep, []byte(`"disks":4`)) {
		fail("sweep response missing rows: %s", sweep)
	}
	fmt.Println("sweep: ok")

	// /statsz must account for exactly what we did: 1 hit, 3 misses
	// (cold simulate + two fresh sweep points), 3 completed runs.
	resp, err := http.Get(base + "/statsz")
	if err != nil {
		fail("statsz: %v", err)
	}
	statsB, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	stats := string(statsB)
	for _, want := range []string{"cache_hits 1\n", "cache_misses 3\n", "sim_runs 3\n", "cache_entries 3\n"} {
		if !strings.Contains(stats, want) {
			fail("statsz missing %q:\n%s", strings.TrimSpace(want), stats)
		}
	}
	fmt.Println("statsz: counters consistent")

	// Graceful drain on SIGTERM.
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		fail("signal: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			fail("server exited uncleanly: %v; stderr:\n%s", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		fail("server did not drain within 30s; stderr:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "drained") {
		fail("no drain confirmation in stderr:\n%s", stderr.String())
	}
	fmt.Println("shutdown: clean drain on SIGTERM")
}
