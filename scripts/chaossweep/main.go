// Command chaossweep fuzzes seeded fault plans across architectures,
// tasks and execution modes. Each iteration derives a random — but
// fully seed-determined — fault plan (media errors, latency spikes,
// silent corruption, stragglers, a drive failure with optional replica
// and spare, interconnect outages), round-trips it through the plan
// grammar, and runs it on every architecture under all three -procmode
// settings, twice each. Every run must terminate — either completing
// (possibly degraded) or attaching a deadlock report — and the rendered
// FaultReport must be byte-identical across the repeat and across
// execution modes. Any divergence, hang-turned-deadlock-report
// mismatch, or grammar round-trip failure exits nonzero.
//
// The sweep is deterministic: the same -seed/-runs/-scale always
// exercises the same plans, so a CI failure reproduces locally with the
// seed it prints. No wall clock or global RNG is involved.
//
//	chaossweep [-seed N] [-runs N] [-scale F]
package main

import (
	"flag"
	"fmt"
	"os"

	"howsim/internal/arch"
	"howsim/internal/fault"
	"howsim/internal/sim"
	"howsim/internal/tasks"
	"howsim/internal/workload"
)

// rng is a splitmix64 stream: deterministic, seedable, no global state
// (the repo's norandglobal checker forbids math/rand's globals).
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	x := r.s
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// float returns a uniform float64 in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / float64(1<<53) }

// intn returns a uniform int in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// genPlan derives one fault plan from the stream. Roughly half the
// clauses are present in any given plan, so sweeps cover both isolated
// faults and pile-ups.
func genPlan(r *rng, disks int) *fault.Plan {
	p := fault.NewPlan(r.next())
	if r.float() < 0.6 {
		p.MediaRate = r.float() * 0.02
	}
	if r.float() < 0.5 {
		p.SlowRate = r.float() * 0.02
		p.SlowBy = sim.Time(1+r.intn(80)) * sim.Millisecond
	}
	if r.float() < 0.5 {
		p.CorruptRate = r.float() * 0.02
	}
	if r.float() < 0.5 {
		p.FailDisk = r.intn(disks)
		p.FailAt = sim.Time(1+r.intn(200)) * sim.Millisecond
		if r.float() < 0.6 {
			p.Replica = true
			if r.float() < 0.5 {
				p.Spare = true
			}
		}
	}
	for n := r.intn(3); n > 0; n-- {
		start := sim.Time(r.intn(300)) * sim.Millisecond
		p.Stragglers = append(p.Stragglers, fault.Straggler{
			Disk:   r.intn(disks),
			Window: fault.Window{Start: start, End: start + sim.Time(1+r.intn(100))*sim.Millisecond},
			Factor: 1.5 + r.float()*6,
		})
	}
	if r.float() < 0.4 {
		names := []string{"fcal0", "fcal1", "node1.scsi", "node2.pci"}
		start := sim.Time(r.intn(200)) * sim.Millisecond
		p.Outages = append(p.Outages, fault.LinkOutage{
			Name:   names[r.intn(len(names))],
			Window: fault.Window{Start: start, End: start + sim.Time(1+r.intn(50))*sim.Millisecond},
		})
	}
	return p
}

// inMode runs fn under the given execution mode.
func inMode(m sim.ExecMode, fn func() string) string {
	prev := sim.DefaultExecMode
	sim.DefaultExecMode = m
	defer func() { sim.DefaultExecMode = prev }()
	return fn()
}

func main() {
	seed := flag.Uint64("seed", 1, "sweep seed (same seed = same plans)")
	runs := flag.Int("runs", 8, "number of fuzzed plans to sweep")
	scale := flag.Float64("scale", 0.002, "dataset scale as a fraction of the paper's Table 2 size")
	flag.Parse()

	const disks = 4
	cfgs := []arch.Config{arch.ActiveDisks(disks), arch.Cluster(disks), arch.SMP(disks)}
	pool := []workload.TaskID{
		workload.Select, workload.Aggregate, workload.GroupBy, workload.DataCube,
		workload.Sort, workload.Join,
	}
	modes := []struct {
		name string
		m    sim.ExecMode
	}{
		{"event", sim.ModeEvent},
		{"goroutine", sim.ModeGoroutine},
		{"parallel", sim.ModeParallel},
	}

	failed := false
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "chaossweep: "+format+"\n", args...)
		failed = true
	}

	for i := 0; i < *runs; i++ {
		r := &rng{s: *seed + uint64(i)*0x5851f42d4c957f2d}
		plan := genPlan(r, disks)

		// The canonical form must survive the plan grammar unchanged.
		parsed, err := fault.ParsePlan(plan.String())
		if err != nil {
			fail("run %d: generated plan %q does not re-parse: %v", i, plan.String(), err)
			continue
		}
		if parsed.String() != plan.String() {
			fail("run %d: plan round trip changed %q to %q", i, plan.String(), parsed.String())
			continue
		}

		cfg := cfgs[r.intn(len(cfgs))]
		task := pool[r.intn(len(pool))]
		ds := workload.ForTask(task)
		bytes := int64(*scale * float64(ds.TotalBytes))
		if bytes < 8<<20 {
			bytes = 8 << 20
		}
		ds = ds.Scaled(bytes)

		one := func() string {
			res := tasks.RunDatasetFaulted(cfg, task, ds, parsed)
			fr := res.Fault
			if fr == nil {
				fail("run %d: faulted run attached no FaultReport (%s, %s)", i, cfg.Name(), task)
				return ""
			}
			if !fr.Completed && fr.Deadlock == "" {
				fail("run %d: run did not complete and carries no deadlock report (%s, %s)",
					i, cfg.Name(), task)
			}
			return res.Elapsed.String() + "\n" + fr.Render()
		}

		var base, baseMode string
		for _, md := range modes {
			first := inMode(md.m, one)
			again := inMode(md.m, one)
			if first != again {
				fail("run %d: %s-mode repeat diverged (%s, %s, plan %s)\n--- first ---\n%s--- again ---\n%s",
					i, md.name, cfg.Name(), task, plan.String(), first, again)
			}
			if base == "" {
				base, baseMode = first, md.name
			} else if first != base {
				fail("run %d: %s-mode output differs from %s mode (%s, %s, plan %s)\n--- %s ---\n%s--- %s ---\n%s",
					i, md.name, baseMode, cfg.Name(), task, plan.String(),
					baseMode, base, md.name, first)
			}
		}
		status := "ok"
		if failed {
			status = "FAIL"
		}
		fmt.Printf("run %2d %-4s %-10s %-9s plan %s\n", i, status, cfg.Name(), task, plan.String())
	}
	if failed {
		os.Exit(1)
	}
}
