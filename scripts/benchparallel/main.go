// Command benchparallel measures the wall-clock speedup of the sharded
// parallel execution mode (-procmode parallel) over the single-kernel
// event mode on the shardable Active Disk tasks, and records the honest
// numbers — including the host's core count — as a JSON array with one
// row per task:
//
//	go run ./scripts/benchparallel            # or: make bench-parallel
//	go run ./scripts/benchparallel -tasks sort,join -disks 64 -count 3
//
// For every task the two runs must agree on the simulated elapsed time
// (the parallel mode is byte-equivalent, not approximately equal); the
// command fails if they diverge. benchguard gates the recorded speedups
// per task, and only when the measurement machine had enough cores for
// the comparison to mean anything.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"howsim/internal/arch"
	"howsim/internal/sim"
	"howsim/internal/tasks"
	"howsim/internal/workload"
)

type report struct {
	Generated  string  `json:"generated"`
	GoVersion  string  `json:"go_version"`
	GOARCH     string  `json:"goarch"`
	NumCPU     int     `json:"num_cpu"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Task       string  `json:"task"`
	Disks      int     `json:"disks"`
	Scale      float64 `json:"scale"`
	Count      int     `json:"count"`
	SingleMs   float64 `json:"single_ms"`
	ParallelMs float64 `json:"parallel_ms"`
	Speedup    float64 `json:"speedup"`
	ElapsedSim string  `json:"elapsed_sim"`
}

func main() {
	var (
		out      = flag.String("out", "BENCH_parallel.json", "output file")
		taskList = flag.String("tasks", "select,sort,join",
			"comma-separated shardable tasks: select|aggregate|groupby|dcube|sort|join")
		disks = flag.Int("disks", 64, "Active Disk farm size (one shard per disk)")
		scale = flag.Float64("scale", 0.25, "dataset scale factor")
		count = flag.Int("count", 3, "repetitions per mode (best wall time wins)")
	)
	flag.Parse()

	var rows []report
	for _, name := range strings.Split(*taskList, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		task, err := workload.ParseTask(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchparallel:", err)
			os.Exit(2)
		}
		ds := workload.ForTask(task)
		if *scale < 1.0 {
			ds = ds.Scaled(int64(float64(ds.TotalBytes) * *scale))
		}
		cfg := arch.ActiveDisks(*disks)

		singleWall, singleSim := measure(sim.ModeEvent, cfg, task, ds, *count)
		parWall, parSim := measure(sim.ModeParallel, cfg, task, ds, *count)
		if singleSim != parSim {
			fmt.Fprintf(os.Stderr, "benchparallel: %s: simulated time diverged: event %v, parallel %v\n",
				task, singleSim, parSim)
			os.Exit(1)
		}

		r := report{
			Generated:  time.Now().UTC().Format(time.RFC3339),
			GoVersion:  runtime.Version(),
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GoMaxProcs: runtime.GOMAXPROCS(0),
			Task:       task.String(),
			Disks:      *disks,
			Scale:      *scale,
			Count:      *count,
			SingleMs:   float64(singleWall.Microseconds()) / 1e3,
			ParallelMs: float64(parWall.Microseconds()) / 1e3,
			Speedup:    singleWall.Seconds() / parWall.Seconds(),
			ElapsedSim: singleSim.String(),
		}
		rows = append(rows, r)
		fmt.Printf("%s on %d disks: %.1f ms single / %.1f ms parallel = %.2fx on %d cores\n",
			r.Task, r.Disks, r.SingleMs, r.ParallelMs, r.Speedup, r.NumCPU)
	}
	if len(rows) == 0 {
		fmt.Fprintln(os.Stderr, "benchparallel: no tasks given")
		os.Exit(2)
	}

	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchparallel:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchparallel:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d tasks)\n", *out, len(rows))
}

// measure runs the task count times in the given mode and returns the
// best wall time plus the (mode-independent) simulated elapsed time.
func measure(mode sim.ExecMode, cfg arch.Config, task workload.TaskID, ds workload.Dataset,
	count int) (time.Duration, sim.Time) {
	prev := sim.DefaultExecMode
	sim.DefaultExecMode = mode
	defer func() { sim.DefaultExecMode = prev }()
	var best time.Duration
	var elapsed sim.Time
	for i := 0; i < count; i++ {
		start := time.Now()
		r := tasks.RunDataset(cfg, task, ds)
		wall := time.Since(start)
		if i == 0 || wall < best {
			best = wall
		}
		elapsed = r.Elapsed
	}
	return best, elapsed
}
