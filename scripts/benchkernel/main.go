// Command benchkernel runs the internal/sim kernel microbenchmarks and
// writes the results as JSON (default BENCH_kernel.json) so the perf
// trajectory of the DES hot path can be tracked across PRs:
//
//	go run ./scripts/benchkernel            # or: make bench-kernel
//	go run ./scripts/benchkernel -count 5 -out /tmp/k.json
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"

	"howsim/internal/benchfmt"
)

func main() {
	var (
		out     = flag.String("out", "BENCH_kernel.json", "output file")
		pattern = flag.String("bench", "BenchmarkKernel", "benchmark regexp")
		pkg     = flag.String("pkg", "./internal/sim", "package to benchmark")
		count   = flag.Int("count", 1, "benchmark repetitions (best ns/op wins)")
	)
	flag.Parse()

	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", *pattern, "-benchmem", "-count", strconv.Itoa(*count), *pkg)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchkernel: go test failed: %v\n%s", err, raw)
		os.Exit(1)
	}

	rep := benchfmt.NewReport(*pkg, *pattern, *count)
	rep.Benchmarks = benchfmt.ParseOutput(raw)
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchkernel: no benchmark lines parsed")
		os.Exit(1)
	}
	if err := rep.WriteFile(*out); err != nil {
		fmt.Fprintln(os.Stderr, "benchkernel:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))
}
