// Command benchkernel runs the internal/sim kernel microbenchmarks and
// writes the results as JSON (default BENCH_kernel.json) so the perf
// trajectory of the DES hot path can be tracked across PRs:
//
//	go run ./scripts/benchkernel            # or: make bench-kernel
//	go run ./scripts/benchkernel -count 5 -out /tmp/k.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the BENCH_kernel.json document.
type Report struct {
	Generated  string      `json:"generated"`
	GoVersion  string      `json:"go_version"`
	GOARCH     string      `json:"goarch"`
	NumCPU     int         `json:"num_cpu"`
	Package    string      `json:"package"`
	Pattern    string      `json:"pattern"`
	Count      int         `json:"count"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	var (
		out     = flag.String("out", "BENCH_kernel.json", "output file")
		pattern = flag.String("bench", "BenchmarkKernel", "benchmark regexp")
		pkg     = flag.String("pkg", "./internal/sim", "package to benchmark")
		count   = flag.Int("count", 1, "benchmark repetitions (best ns/op wins)")
	)
	flag.Parse()

	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", *pattern, "-benchmem", "-count", strconv.Itoa(*count), *pkg)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchkernel: go test failed: %v\n%s", err, raw)
		os.Exit(1)
	}

	best := map[string]Benchmark{}
	var order []string
	for _, line := range strings.Split(string(raw), "\n") {
		b, ok := parseLine(line)
		if !ok {
			continue
		}
		if prev, seen := best[b.Name]; !seen {
			order = append(order, b.Name)
			best[b.Name] = b
		} else if b.NsPerOp < prev.NsPerOp {
			best[b.Name] = b
		}
	}
	if len(order) == 0 {
		fmt.Fprintln(os.Stderr, "benchkernel: no benchmark lines parsed")
		os.Exit(1)
	}

	rep := Report{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Package:   *pkg,
		Pattern:   *pattern,
		Count:     *count,
	}
	for _, name := range order {
		rep.Benchmarks = append(rep.Benchmarks, best[name])
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchkernel:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchkernel:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))
}

// parseLine parses one result line, e.g.
//
//	BenchmarkKernelEventThroughput-8  10646050  114.6 ns/op  8726570 events/s  0 B/op  0 allocs/op
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Benchmark{}, false
	}
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		name = name[:i] // strip -GOMAXPROCS suffix
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}
