// Probe determinism: with an observability sink attached, the trace
// JSON and the breakdown report must be byte-identical across repeated
// runs and across `-procmode event|goroutine` — with or without an
// injected fault plan — and the task phases must account for (almost)
// all of each run's end-to-end virtual time.
package repro_test

import (
	"fmt"
	"strings"
	"testing"

	"howsim/internal/arch"
	"howsim/internal/fault"
	"howsim/internal/probe"
	"howsim/internal/sim"
	"howsim/internal/tasks"
	"howsim/internal/workload"
)

// probedRun runs one task at a small scale with a fresh sink and
// returns the full observable output: trace JSON bytes plus the
// rendered breakdown report. Comparing this string across runs and
// modes is exactly the byte-identity the CLI flags promise.
func probedRun(cfg arch.Config, task workload.TaskID, scale float64, plan *fault.Plan) (string, *probe.Sink, sim.Time) {
	ds := workload.ForTask(task)
	ds = ds.Scaled(int64(float64(ds.TotalBytes) * scale))
	sink := probe.NewSink()
	r := tasks.RunDatasetProbed(cfg, task, ds, plan, sink)
	var sb strings.Builder
	if err := sink.WriteTrace(&sb); err != nil {
		panic(err)
	}
	sb.WriteString(sink.BuildReport(task.String(), cfg.Name(), int64(r.Elapsed)).Render())
	return sb.String(), sink, r.Elapsed
}

// TestProbeTraceRepeatable runs the same probed simulation twice in the
// same mode and requires byte-identical trace+report output.
func TestProbeTraceRepeatable(t *testing.T) {
	run := func() string {
		out, _, _ := probedRun(arch.ActiveDisks(8), workload.Sort, 0.005, nil)
		return out
	}
	a := inMode(sim.ModeEvent, run)
	b := inMode(sim.ModeEvent, run)
	if a != b {
		t.Fatal("two identical probed runs produced different trace/report bytes")
	}
}

// TestProbeTraceModeEquivalence requires the trace and report to be
// byte-identical across the two execution modes, on all three
// architectures.
func TestProbeTraceModeEquivalence(t *testing.T) {
	cases := []struct {
		name string
		cfg  arch.Config
		task workload.TaskID
	}{
		{"sort on active disks", arch.ActiveDisks(8), workload.Sort},
		{"select on cluster", arch.Cluster(4), workload.Select},
		{"aggregate on smp", arch.SMP(4), workload.Aggregate},
	}
	for _, c := range cases {
		modeCompare(t, "probed "+c.name, func() string {
			out, _, _ := probedRun(c.cfg, c.task, 0.005, nil)
			return out
		})
	}
}

// TestProbeTraceFaultedEquivalence repeats the cross-mode comparison
// under a deterministic fault plan, so degraded-run traces (retries,
// stall spans, recovery rebuilds) are held to the same standard.
func TestProbeTraceFaultedEquivalence(t *testing.T) {
	plan, err := fault.ParsePlan("seed=42,media=0.002,slow=0.001,fail=3@50ms,replica")
	if err != nil {
		t.Fatal(err)
	}
	modeCompare(t, "probed faulted select on active disks", func() string {
		out, _, _ := probedRun(arch.ActiveDisks(8), workload.Select, 0.002, plan)
		return out
	})
}

// TestProbePhaseAccounting checks the breakdown's central claim: the
// task phases partition each run's end-to-end virtual time, so the
// report accounts for at least 99% of it (the residual row carries the
// rest explicitly).
func TestProbePhaseAccounting(t *testing.T) {
	cases := []struct {
		name string
		cfg  arch.Config
		task workload.TaskID
	}{
		{"sort/active", arch.ActiveDisks(8), workload.Sort},
		{"sort/cluster", arch.Cluster(4), workload.Sort},
		{"sort/smp", arch.SMP(4), workload.Sort},
		{"select/active", arch.ActiveDisks(8), workload.Select},
	}
	for _, c := range cases {
		out, sink, elapsed := probedRun(c.cfg, c.task, 0.005, nil)
		rep := sink.BuildReport(c.task.String(), c.cfg.Name(), int64(elapsed))
		if acc := rep.Accounted(); acc < 0.99 {
			t.Errorf("%s: phases account for %.2f%% of end-to-end time, want >= 99%%",
				c.name, 100*acc)
		}
		if !strings.Contains(out, "(residual)") {
			t.Errorf("%s: report does not state the residual explicitly", c.name)
		}
		if sink.Dropped() != 0 {
			t.Errorf("%s: ring overflowed (%d dropped) at test scale — grow DefaultRingSpans or shrink the test",
				c.name, sink.Dropped())
		}
	}
}

// TestProbeTraceHasModelSpans spot-checks that the trace carries the
// span taxonomy the issue promises: per-disk seek/transfer activity,
// link occupancy, and compute spans, with no scheduler leakage.
func TestProbeTraceHasModelSpans(t *testing.T) {
	out, sink, _ := probedRun(arch.ActiveDisks(8), workload.Sort, 0.005, nil)
	for _, want := range []string{`"cat":"disk","name":"seek"`, `"cat":"disk","name":"transfer"`,
		`"cat":"link","name":"xfer"`, `"cat":"cpu","name":"compute"`} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %s", want)
		}
	}
	if strings.Contains(out, fmt.Sprintf(`"cat":"%s"`, probe.SchedComponent)) {
		t.Error("scheduler spans leaked into the trace")
	}
	if sink.SpansRecorded() == 0 {
		t.Error("no spans recorded")
	}
}
