# Howsim build/test/bench entry points. The kernel microbenchmarks and
# BENCH_kernel.json exist to track the DES hot path's perf trajectory
# across PRs — run `make bench-kernel` after touching internal/sim and
# commit the refreshed numbers.

GO ?= go

.PHONY: build vet lint vet-fixtures vet-allows test race bench-kernel bench-figures benchfigures bench-parallel bench-service bench-guard fault-smoke trace-smoke chaos-smoke service-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Standard vet plus the howsimvet invariant checkers (determinism,
# dual-mode execution safety, and the v2 concurrency/shard-safety
# rules — see DESIGN.md "Static analysis" and docs/ANALYZERS.md). The
# repo must stay at zero findings; suppressions need a
# `//howsim:allow <analyzer> -- reason` comment, and a suppression that
# stops suppressing anything becomes a finding itself.
lint: vet
	$(GO) build -o /tmp/howsimvet ./cmd/howsimvet
	$(GO) vet -vettool=/tmp/howsimvet ./...

# Just the analyzer fixture tests: fast feedback while writing or
# tuning a checker, without the repo-wide vet sweep.
vet-fixtures:
	$(GO) test ./internal/analysis/...

# Print the reviewed-exemption audit table (file:line, analyzer,
# reason). CI uploads this as an artifact on every lint run.
vet-allows:
	$(GO) run ./cmd/howsimvet -allows .

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

# Refresh BENCH_kernel.json from the internal/sim microbenchmarks
# (3 repetitions, best run wins).
bench-kernel:
	$(GO) run ./scripts/benchkernel -count 3 -out BENCH_kernel.json

# Quick pass over the paper's figure benchmarks at reduced scale.
bench-figures:
	HOWSIM_BENCH_SCALE=0.05 $(GO) test -bench=Figure -benchtime=1x .

# Refresh BENCH_figures.json: figure benchmarks at reduced scale,
# recorded in the same JSON shape as BENCH_kernel.json.
benchfigures:
	$(GO) run ./scripts/benchfigures -count 3 -out BENCH_figures.json

# Refresh BENCH_parallel.json: wall-clock speedup of -procmode parallel
# over the single-kernel event mode on 64-disk select, sort and join
# (one JSON row per task). The recorded numbers are honest for the
# machine that ran them (num_cpu is in the report); benchguard only
# enforces the per-task speedup floor on >= 4 cores.
bench-parallel:
	$(GO) run ./scripts/benchparallel -out BENCH_parallel.json

# Refresh BENCH_service.json: howsimd service-path benchmarks (cold
# admission, warm cache hit, dedup fan-out) with an instant stub
# runner, so the numbers isolate the service layer from simulation.
bench-service:
	$(GO) run ./scripts/benchservice -count 3 -out BENCH_service.json

# Gate the kernel hot path against the committed baseline, the
# sharded-execution speedup against its floor, and the service warm-hit
# path against its baseline (what CI's bench-smoke job runs).
bench-guard:
	$(GO) run ./scripts/benchkernel -count 1 -out /tmp/BENCH_kernel.json
	$(GO) run ./scripts/benchparallel -out /tmp/BENCH_parallel.json
	$(GO) run ./scripts/benchservice -count 1 -out /tmp/BENCH_service.json
	$(GO) run ./scripts/benchguard -baseline BENCH_kernel.json -current /tmp/BENCH_kernel.json \
		-parallel /tmp/BENCH_parallel.json -service /tmp/BENCH_service.json

# Fault-injection smoke: one disk fails mid-scan on each architecture,
# once recovering via replicas and once completing degraded. Every run
# must print a fault report (i.e. not hang and not panic).
fault-smoke:
	$(GO) run ./cmd/experiments -scale 0.02 -sizes 16 \
		-faults seed=42,media=0.002,slow=0.001,fail=3@50ms,replica
	$(GO) run ./cmd/experiments -scale 0.02 -sizes 16 \
		-faults seed=42,fail=3@50ms

# Chaos smoke: a short seeded fault-plan sweep across architectures,
# tasks and -procmode settings. Every fuzzed plan must round-trip the
# plan grammar, terminate (completing or attaching a deadlock report),
# and render a byte-identical FaultReport across repeats and execution
# modes. Deterministic: a failure reproduces with the printed seed.
chaos-smoke:
	$(GO) run ./scripts/chaossweep -seed 1 -runs 6
	$(GO) run -race ./scripts/chaossweep -seed 2 -runs 2

# Observability smoke: run one probed sort on each architecture, write
# the Chrome traces plus a breakdown report, and validate every trace
# with tracecheck (parses, has spans, carries the thread metadata).
# CI uploads /tmp/howsim-traces as an artifact.
trace-smoke:
	mkdir -p /tmp/howsim-traces
	$(GO) run ./cmd/experiments -scale 0.02 -sizes 16 -faulttask sort \
		-trace /tmp/howsim-traces/sort.json -breakdown \
		> /tmp/howsim-traces/breakdown.txt
	$(GO) run ./scripts/tracecheck /tmp/howsim-traces/sort.active.json \
		/tmp/howsim-traces/sort.cluster.json /tmp/howsim-traces/sort.smp.json
	grep -q "accounted" /tmp/howsim-traces/breakdown.txt

# Service smoke: build howsimd, start it, simulate the same config
# twice (repeat must be a byte-identical cache hit), sweep, check
# /statsz accounting, then SIGTERM and require a clean drain.
service-smoke:
	$(GO) run ./scripts/servicesmoke
