# Howsim build/test/bench entry points. The kernel microbenchmarks and
# BENCH_kernel.json exist to track the DES hot path's perf trajectory
# across PRs — run `make bench-kernel` after touching internal/sim and
# commit the refreshed numbers.

GO ?= go

.PHONY: build vet test race bench-kernel bench-figures

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

# Refresh BENCH_kernel.json from the internal/sim microbenchmarks
# (3 repetitions, best run wins).
bench-kernel:
	$(GO) run ./scripts/benchkernel -count 3 -out BENCH_kernel.json

# Quick pass over the paper's figure benchmarks at reduced scale.
bench-figures:
	HOWSIM_BENCH_SCALE=0.05 $(GO) test -bench=Figure -benchtime=1x .
