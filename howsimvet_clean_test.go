// Clean-sweep gate for the howsimvet invariant checkers: the repository
// must carry zero findings at all times. The test builds cmd/howsimvet
// and runs it over every package via `go vet -vettool`, so a stray
// time.Now in a model package, an unsorted map range feeding a report,
// a guarded field touched without its mutex, or a leaf disklet
// reaching hub state outside Shard.Call fails `go test ./...` the same
// way it fails CI's lint job. New exemptions go through a
// `//howsim:allow <analyzer> -- reason` comment, which keeps every
// suppression greppable and reviewed — and audited: each analyzer
// reports its own directives that no longer suppress anything, so a
// stale exemption fails this sweep too (`howsimvet -allows` prints the
// live table).
package repro_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"
)

func TestHowsimvetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping vettool sweep")
	}
	goTool := filepath.Join(runtime.GOROOT(), "bin", "go")
	if _, err := os.Stat(goTool); err != nil {
		t.Skipf("go tool not found at %s: %v", goTool, err)
	}

	vettool := filepath.Join(t.TempDir(), "howsimvet")
	build := exec.Command(goTool, "build", "-o", vettool, "./cmd/howsimvet")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building howsimvet: %v\n%s", err, out)
	}

	sweep := exec.Command(goTool, "vet", "-vettool="+vettool, "./...")
	if out, err := sweep.CombinedOutput(); err != nil {
		t.Errorf("howsimvet found violations (exit: %v):\n%s", err, out)
	}
}
