// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus ablation benches for the design choices called out in
// DESIGN.md. Each figure benchmark runs the full experiment (every
// simulation it needs) once per iteration and reports the headline
// numbers the paper reports as custom metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates the entire evaluation. Set HOWSIM_BENCH_SCALE (e.g. 0.05)
// to shrink the datasets for a quick pass; the default is the full
// Table 2 scale.
package repro_test

import (
	"os"
	"strconv"
	"testing"

	"howsim/internal/arch"
	"howsim/internal/cost"
	"howsim/internal/disk"
	"howsim/internal/diskos"
	"howsim/internal/experiments"
	"howsim/internal/sim"
	"howsim/internal/tasks"
	"howsim/internal/workload"
)

// benchOptions returns full-scale options unless HOWSIM_BENCH_SCALE
// overrides.
func benchOptions() experiments.Options {
	o := experiments.Default()
	if s := os.Getenv("HOWSIM_BENCH_SCALE"); s != "" {
		if f, err := strconv.ParseFloat(s, 64); err == nil && f > 0 && f <= 1 {
			o.Scale = f
		}
	}
	return o
}

// BenchmarkTable1CostModel regenerates Table 1 (cost evolution for
// 64-node configurations) and reports the headline price ratios.
func BenchmarkTable1CostModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.RenderTable1(64)
	}
	b.ReportMetric(cost.ActiveDiskTotal(cost.Jul99, 64)/cost.ClusterTotal(cost.Jul99, 64), "active/cluster-price")
	b.ReportMetric(cost.SMPTotal(64)/cost.ActiveDiskTotal(cost.Jul99, 64), "smp/active-price")
}

// BenchmarkTable2Datasets regenerates Table 2 and exercises every
// synthetic generator at a fixed sample size.
func BenchmarkTable2Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.RenderTable2()
		_ = workload.GenRecords(10_000, 1000, 1)
		_ = workload.GenSortKeys(10_000, 1)
		_ = workload.GenCube(10_000, workload.ForTask(workload.DataCube).CubeDims, 1)
		_, _ = workload.GenJoin(2_000, 8_000, 1)
		_ = workload.GenTxns(10_000, 1000, 4, 1)
		_ = workload.GenDeltas(10_000, 500, 1)
	}
}

// BenchmarkFigure1 runs the core comparison (8 tasks x 3 architectures
// x 16..128 disks) and reports the paper's headline ratios at 128
// disks.
func BenchmarkFigure1(b *testing.B) {
	o := benchOptions()
	var f *experiments.Figure1
	for i := 0; i < b.N; i++ {
		f = experiments.RunFigure1(o)
	}
	large := f.Sizes[len(f.Sizes)-1]
	sel := f.Results[large][workload.Select]
	srt := f.Results[large][workload.Sort]
	b.ReportMetric(sel[arch.KindSMP].Elapsed.Seconds()/sel[arch.KindActiveDisk].Elapsed.Seconds(),
		"smp/active-select")
	b.ReportMetric(srt[arch.KindSMP].Elapsed.Seconds()/srt[arch.KindActiveDisk].Elapsed.Seconds(),
		"smp/active-sort")
	b.ReportMetric(sel[arch.KindCluster].Elapsed.Seconds()/sel[arch.KindActiveDisk].Elapsed.Seconds(),
		"cluster/active-select")
	if b.N > 0 {
		b.Log("\n" + f.Render())
	}
}

// BenchmarkFigure2 runs the interconnect-bandwidth sweep and reports
// how much a 400 MB/s loop helps each architecture at the largest size.
func BenchmarkFigure2(b *testing.B) {
	o := benchOptions()
	var f *experiments.Figure2
	for i := 0; i < b.N; i++ {
		f = experiments.RunFigure2(o)
	}
	n := f.Sizes[len(f.Sizes)-1]
	agg := f.Results[n][workload.Aggregate]
	srt := f.Results[n][workload.Sort]
	b.ReportMetric(agg["200MB(S)"].Elapsed.Seconds()/agg["400MB(S)"].Elapsed.Seconds(), "smp-fastio-speedup-agg")
	b.ReportMetric(srt["200MB(A)"].Elapsed.Seconds()/srt["400MB(A)"].Elapsed.Seconds(), "active-fastio-speedup-sort")
	b.ReportMetric(srt["400MB(S)"].Elapsed.Seconds()/srt["200MB(A)"].Elapsed.Seconds(), "smp400/active200-sort")
	if b.N > 0 {
		b.Log("\n" + f.Render())
	}
}

// BenchmarkFigure3 runs the sort-breakdown sweep (base / Fast Disk /
// Fast I/O) and reports the idle fraction at the smallest and largest
// sizes.
func BenchmarkFigure3(b *testing.B) {
	o := benchOptions()
	var f *experiments.Figure3
	for i := 0; i < b.N; i++ {
		f = experiments.RunFigure3(o)
	}
	small, large := f.Sizes[0], f.Sizes[len(f.Sizes)-1]
	idle := func(n int) float64 {
		r := f.Results[n]["base"]
		return r.Breakdown.Fraction("P1:Idle") + r.Breakdown.Fraction("P2:Idle")
	}
	b.ReportMetric(idle(small), "idle-frac-small")
	b.ReportMetric(idle(large), "idle-frac-large")
	base := f.Results[large]["base"].Elapsed.Seconds()
	b.ReportMetric(base/f.Results[large]["Fast Disk"].Elapsed.Seconds(), "fastdisk-speedup-large")
	b.ReportMetric(base/f.Results[large]["Fast I/O"].Elapsed.Seconds(), "fastio-speedup-large")
	if b.N > 0 {
		b.Log("\n" + f.Render())
	}
}

// BenchmarkFigure4 runs the disk-memory sweep (32 vs 64 MB) and reports
// the improvement for dcube (the only memory-sensitive task) and sort.
func BenchmarkFigure4(b *testing.B) {
	o := benchOptions()
	var f *experiments.Figure4
	for i := 0; i < b.N; i++ {
		f = experiments.RunFigure4(o)
	}
	small := f.Sizes[0]
	b.ReportMetric(f.ImprovementPct(small, workload.DataCube), "dcube-improvement-small-%")
	b.ReportMetric(f.ImprovementPct(small, workload.Sort), "sort-improvement-small-%")
	if b.N > 0 {
		b.Log("\n" + f.Render())
	}
}

// BenchmarkFigure5 runs the communication-architecture sweep and
// reports the slowdown for the repartitioning tasks and a scan task.
func BenchmarkFigure5(b *testing.B) {
	o := benchOptions()
	var f *experiments.Figure5
	for i := 0; i < b.N; i++ {
		f = experiments.RunFigure5(o)
	}
	n := f.Sizes[len(f.Sizes)-1]
	b.ReportMetric(f.Slowdown(n, workload.Sort), "sort-slowdown")
	b.ReportMetric(f.Slowdown(n, workload.Join), "join-slowdown")
	b.ReportMetric(f.Slowdown(n, workload.Select), "select-slowdown")
	if b.N > 0 {
		b.Log("\n" + f.Render())
	}
}

// --- Ablation benches: design choices called out in DESIGN.md ---------------

// BenchmarkAblationLoopGranularity contrasts frame-level loop
// arbitration with whole-message arbitration: a small control transfer
// queued behind a bulk stream, measuring its completion latency.
func BenchmarkAblationLoopGranularity(b *testing.B) {
	run := func(frame int64) sim.Time {
		k := sim.NewKernel()
		defer k.Close()
		pipe := sim.NewPipe(k, "loop", 1, 100e6, 0)
		var smallDone sim.Time
		k.Spawn("bulk", func(p *sim.Proc) {
			pipe.TransferSegmented(p, 512<<20, frame)
		})
		k.Spawn("ctl", func(p *sim.Proc) {
			p.Delay(sim.Millisecond)
			pipe.Transfer(p, 64<<10)
			smallDone = p.Now()
		})
		k.Run()
		return smallDone
	}
	var fine, coarse sim.Time
	for i := 0; i < b.N; i++ {
		fine = run(128 << 10)
		coarse = run(512 << 20)
	}
	b.ReportMetric(fine.Seconds(), "ctl-latency-framed-s")
	b.ReportMetric(coarse.Seconds(), "ctl-latency-unframed-s")
}

// BenchmarkAblationSMPSelfScheduling contrasts the shared layout-order
// block queue against a-priori static partitioning of a striped scan
// (the paper: "a-priori partitioning of the dataset would result in a
// potentially long seek for every request").
func BenchmarkAblationSMPSelfScheduling(b *testing.B) {
	const totalBytes = 512 << 20
	run := func(shared bool) sim.Time {
		k := sim.NewKernel()
		defer k.Close()
		m := arch.SMP(8).BuildSMP(k)
		stripe := m.NewStripe([]int{0, 1, 2, 3, 4, 5, 6, 7}, 0)
		q := m.NewBlockQueue("q", totalBytes, 256<<10)
		for i := 0; i < 8; i++ {
			i := i
			k.Spawn("w", func(p *sim.Proc) {
				if shared {
					for {
						off, n, ok := q.Next(p, m.CPUs[i])
						if !ok {
							return
						}
						stripe.Read(p, m.CPUs[i], off, n)
					}
				} else {
					per := int64(totalBytes / 8)
					base := int64(i) * per
					for off := int64(0); off < per; off += 256 << 10 {
						stripe.Read(p, m.CPUs[i], base+off, 256<<10)
					}
				}
			})
		}
		return k.Run()
	}
	var sharedT, staticT sim.Time
	for i := 0; i < b.N; i++ {
		sharedT = run(true)
		staticT = run(false)
	}
	b.ReportMetric(sharedT.Seconds(), "shared-queue-s")
	b.ReportMetric(staticT.Seconds(), "static-partition-s")
	b.ReportMetric(staticT.Seconds()/sharedT.Seconds(), "static/shared")
}

// BenchmarkAblationPipelining contrasts the Active Disks' pipelined
// forwarding (ample communication buffers) against stop-and-stage
// streaming with minimal buffers, where the consumer's run writes stall
// the producers.
func BenchmarkAblationPipelining(b *testing.B) {
	run := func(commBuf int64) sim.Time {
		cfg := diskos.DefaultConfig(4)
		cfg.CommBufBytes = commBuf
		k := sim.NewKernel()
		defer k.Close()
		s := diskos.NewSystem(k, cfg)
		const bytes = 64 << 20
		for i := 0; i < 2; i++ {
			src, dst := s.Disks[i], s.Disks[2+i]
			k.Spawn("send", func(p *sim.Proc) {
				src.Send(p, dst.ID, bytes, nil)
			})
			k.Spawn("recv", func(p *sim.Proc) {
				var got, pend int64
				for got < bytes {
					c, ok := dst.Recv(p)
					if !ok {
						return
					}
					got += c.Bytes
					pend += c.Bytes
					if pend >= 4<<20 {
						// Stage the received data to media; with small
						// buffers the senders stall behind this write.
						dst.WriteLocal(p, 1<<30, pend/512*512)
						pend = 0
					}
					dst.Release(c.Bytes)
				}
			})
		}
		return k.Run()
	}
	var pipelined, staged sim.Time
	for i := 0; i < b.N; i++ {
		pipelined = run(8 << 20)
		staged = run(256 << 10)
	}
	b.ReportMetric(pipelined.Seconds(), "pipelined-s")
	b.ReportMetric(staged.Seconds(), "staged-s")
	b.ReportMetric(staged.Seconds()/pipelined.Seconds(), "staged/pipelined")
}

// BenchmarkAblationDiskGroups contrasts NOW-sort-style separate
// read/write disk groups with mixed groups for the SMP sort.
func BenchmarkAblationDiskGroups(b *testing.B) {
	const total = 256 << 20
	run := func(split bool) sim.Time {
		k := sim.NewKernel()
		defer k.Close()
		m := arch.SMP(8).BuildSMP(k)
		readDisks := []int{0, 1, 2, 3}
		writeDisks := []int{4, 5, 6, 7}
		if !split {
			readDisks = []int{0, 1, 2, 3, 4, 5, 6, 7}
			writeDisks = readDisks
		}
		rs := m.NewStripe(readDisks, 0)
		ws := m.NewStripe(writeDisks, 1<<30)
		q := m.NewBlockQueue("q", total, 256<<10)
		var wOff int64
		for i := 0; i < 8; i++ {
			i := i
			k.Spawn("w", func(p *sim.Proc) {
				for {
					off, n, ok := q.Next(p, m.CPUs[i])
					if !ok {
						return
					}
					rs.Read(p, m.CPUs[i], off, n)
					o := wOff
					wOff += n
					ws.Write(p, m.CPUs[i], o, n)
				}
			})
		}
		return k.Run()
	}
	var splitT, mixedT sim.Time
	for i := 0; i < b.N; i++ {
		splitT = run(true)
		mixedT = run(false)
	}
	b.ReportMetric(splitT.Seconds(), "split-groups-s")
	b.ReportMetric(mixedT.Seconds(), "mixed-groups-s")
	b.ReportMetric(mixedT.Seconds()/splitT.Seconds(), "mixed/split")
}

// BenchmarkSimulatorThroughput measures raw simulator speed: simulated
// seconds per wall second for a full-scale 128-disk Active Disk select.
func BenchmarkSimulatorThroughput(b *testing.B) {
	ds := workload.ForTask(workload.Select)
	var res *tasks.Result
	for i := 0; i < b.N; i++ {
		res = tasks.RunDataset(arch.ActiveDisks(128), workload.Select, ds)
	}
	b.ReportMetric(res.Elapsed.Seconds(), "simulated-s")
}

// BenchmarkExtensionFibreSwitch runs the beyond-the-paper interconnect
// study: shuffle-heavy tasks on 128- and 256-disk farms with switched
// loop fabrics.
func BenchmarkExtensionFibreSwitch(b *testing.B) {
	o := benchOptions()
	var f *experiments.ExtensionFibreSwitch
	for i := 0; i < b.N; i++ {
		f = experiments.RunExtensionFibreSwitch(o)
	}
	n := f.Sizes[len(f.Sizes)-1]
	b.ReportMetric(f.Speedup(n, workload.Sort, 8), "sort-8loop-speedup")
	b.ReportMetric(f.Speedup(n, workload.Join, 8), "join-8loop-speedup")
	if b.N > 0 {
		b.Log("\n" + f.Render())
	}
}

// BenchmarkAblationDiskScheduling contrasts FCFS with elevator (SCAN)
// scheduling on a seek-heavy queue of scattered requests from many
// concurrent streams.
func BenchmarkAblationDiskScheduling(b *testing.B) {
	run := func(policy disk.SchedulingPolicy) sim.Time {
		k := sim.NewKernel()
		defer k.Close()
		d := disk.New(k, "d", disk.Cheetah9LP())
		d.SetScheduler(policy)
		capacity := d.Capacity()
		for s := 0; s < 8; s++ {
			s := s
			k.Spawn("stream", func(p *sim.Proc) {
				// Random scattered reads, 4 outstanding (lio_listio
				// style) so the scheduler has a deep queue to reorder.
				slots := capacity / (256 << 10)
				for i := int64(0); i < 64; i += 4 {
					var reqs []*disk.Request
					for j := int64(0); j < 4; j++ {
						slot := (int64(s)*64 + i + j) * 2654435761 % slots
						reqs = append(reqs, d.Submit(&disk.Request{
							Offset: slot * (256 << 10), Length: 256 << 10}))
					}
					for _, r := range reqs {
						r.Wait(p)
					}
				}
			})
		}
		return k.Run()
	}
	var fcfs, elev sim.Time
	for i := 0; i < b.N; i++ {
		fcfs = run(disk.FCFS)
		elev = run(disk.Elevator)
	}
	b.ReportMetric(fcfs.Seconds(), "fcfs-s")
	b.ReportMetric(elev.Seconds(), "elevator-s")
	b.ReportMetric(fcfs.Seconds()/elev.Seconds(), "fcfs/elevator")
}
