// Execution-mode equivalence: the event-driven fast path, the goroutine
// process model and the sharded parallel mode must be indistinguishable
// in simulated results — every rendered figure and fault report
// byte-identical. These tests run the same experiments under all three
// sim.ExecModes and compare the rendered output directly.
package repro_test

import (
	"fmt"
	"strings"
	"testing"

	"howsim/internal/arch"
	"howsim/internal/experiments"
	"howsim/internal/fault"
	"howsim/internal/probe"
	"howsim/internal/sim"
	"howsim/internal/tasks"
	"howsim/internal/workload"
)

// inMode runs fn with sim.DefaultExecMode set to m, restoring the
// previous mode afterwards. Tests using it must not run in parallel.
func inMode(m sim.ExecMode, fn func() string) string {
	prev := sim.DefaultExecMode
	sim.DefaultExecMode = m
	defer func() { sim.DefaultExecMode = prev }()
	return fn()
}

func modeCompare(t *testing.T, name string, fn func() string) {
	t.Helper()
	event := inMode(sim.ModeEvent, fn)
	for _, m := range []sim.ExecMode{sim.ModeGoroutine, sim.ModeParallel} {
		got := inMode(m, fn)
		if event != got {
			t.Errorf("%s: %v-mode output differs from event-mode output\n--- event ---\n%s\n--- %v ---\n%s",
				name, m, event, m, got)
		}
	}
}

// TestExecModeFigureEquivalence renders figures at Quick scale in both
// modes. Figure 1 exercises all three architectures (active disks,
// cluster with netsim links, SMP); Figure 5 adds the restricted
// front-end relay path of the stream pump.
func TestExecModeFigureEquivalence(t *testing.T) {
	o := experiments.Quick()
	modeCompare(t, "figure1", func() string { return experiments.RunFigure1(o).Render() })
	modeCompare(t, "figure5", func() string { return experiments.RunFigure5(o).Render() })
}

// TestExecModeSortContentionEquivalence pins a case the Quick-scale
// figure runs are too small to catch: an active-disk sort whose merge
// phase keeps many streams contending for loop bandwidth and receive
// buffers at once. Same-time grant ordering differences between the
// modes (e.g. a stream pump waking its caller through an extra event
// instead of resuming it inline) show up here as a drifting elapsed
// time long before they are visible in the rendered figures.
func TestExecModeSortContentionEquivalence(t *testing.T) {
	modeCompare(t, "sort on 8 active disks", func() string {
		ds := workload.ForTask(workload.Sort)
		ds = ds.Scaled(int64(float64(ds.TotalBytes) * 0.01))
		r := tasks.RunDataset(arch.ActiveDisks(8), workload.Sort, ds)
		return fmt.Sprintf("%v %v", r.Elapsed, r.Details)
	})
}

// TestExecModeShardedTaskEquivalence pins every task the parallel mode
// actually shards — the hub-and-spoke four plus the communication-heavy
// sort and join, whose all-to-all repartition streams, credit releases
// and phase barriers ride the Call channel — at a scale where flushes
// from many disks contend for the loop, with a probe sink attached: the
// elapsed time, the detail metrics, the rendered breakdown report and
// the exported trace must all match the single-kernel event run byte
// for byte.
func TestExecModeShardedTaskEquivalence(t *testing.T) {
	for _, task := range []workload.TaskID{
		workload.Select, workload.Aggregate, workload.GroupBy, workload.DataCube,
		workload.Sort, workload.Join,
	} {
		task := task
		modeCompare(t, "sharded "+task.String(), func() string {
			ds := workload.ForTask(task).Scaled(1 << 24)
			sink := probe.NewSink()
			sink.SetEnabled(true)
			r := tasks.RunDatasetProbed(arch.ActiveDisks(8), task, ds, nil, sink)
			var trace strings.Builder
			if err := sink.WriteTrace(&trace); err != nil {
				t.Fatal(err)
			}
			report := sink.BuildReport(task.String(), r.Config.Name(), int64(r.Elapsed)).Render()
			return fmt.Sprintf("%v\n%v\n%s\n%s", r.Elapsed, r.Details, report, trace.String())
		})
	}
}

// TestExecModeFaultEquivalence runs tasks under a deterministic fault
// plan — media retries, latency spikes, a permanent drive failure with
// replica recovery — in both modes and compares the rendered fault
// reports. This covers the disk retry/backoff path and the closed-queue
// retirement of the event-mode service loops.
func TestExecModeFaultEquivalence(t *testing.T) {
	plan, err := fault.ParsePlan("seed=42,media=0.002,slow=0.001,fail=3@50ms,replica")
	if err != nil {
		t.Fatal(err)
	}
	run := func(cfg arch.Config, task workload.TaskID) func() string {
		return func() string {
			ds := workload.ForTask(task).Scaled(1 << 22)
			r := tasks.RunDatasetFaulted(cfg, task, ds, plan)
			return r.Elapsed.String() + "\n" + r.Fault.Render()
		}
	}
	modeCompare(t, "faulted select on active disks", run(arch.ActiveDisks(8), workload.Select))
	modeCompare(t, "faulted sort on cluster", run(arch.Cluster(4), workload.Sort))
}

// TestExecModeShardedFaultEquivalence pins faulted runs of the tasks
// the parallel mode actually shards: non-replica fault plans no longer
// fall back to the single-kernel path, so the sharded execution of
// media retries, silent-corruption rereads, straggler windows, a
// replica-less drive failure and bus outages must produce byte-identical
// elapsed times and fault reports. (Replica failover and spare rebuild
// plans read peer disks across shard boundaries and deliberately stay
// on the single-kernel path — TestExecModeFaultEquivalence covers
// them.)
func TestExecModeShardedFaultEquivalence(t *testing.T) {
	plans := []string{
		"seed=7,media=0.004,slow=0.002,corrupt=0.003",
		"seed=9,fail=2@10ms",
		"seed=11,straggler=1@5ms+30ms*3,outage=fcal0@8ms+2ms",
	}
	for _, planStr := range plans {
		plan, err := fault.ParsePlan(planStr)
		if err != nil {
			t.Fatal(err)
		}
		for _, task := range []workload.TaskID{
			workload.Select, workload.Aggregate, workload.GroupBy, workload.DataCube,
			workload.Sort, workload.Join,
		} {
			task, plan := task, plan
			modeCompare(t, fmt.Sprintf("sharded %s under %s", task, planStr), func() string {
				ds := workload.ForTask(task).Scaled(1 << 23)
				r := tasks.RunDatasetFaulted(arch.ActiveDisks(8), task, ds, plan)
				return r.Elapsed.String() + "\n" + r.Fault.Render()
			})
		}
	}
}
