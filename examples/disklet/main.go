// disklet: program an Active Disk directly with the paper's stream-
// based disklet model — sandboxed application code that cannot initiate
// I/O, gets a fixed scratch reservation, and streams to a fixed sink —
// and watch a 64-disk farm run a select entirely at the drives.
//
// Run with:
//
//	go run ./examples/disklet
package main

import (
	"fmt"

	"howsim/internal/diskos"
	"howsim/internal/sim"
)

func main() {
	const (
		disks       = 64
		perDisk     = 256 << 20 // 256 MB of tuples per drive
		tupleBytes  = 64
		selectivity = 0.01
	)
	k := sim.NewKernel()
	system := diskos.NewSystem(k, diskos.DefaultConfig(disks))

	// The disklet: evaluate the predicate on every tuple, emit matches.
	// It sees only chunk sizes; DiskOS does all I/O and routing.
	selectDisklet := diskos.Disklet{
		Name:         "select-1pct",
		ScratchBytes: 1 << 20,
		Process: func(chunk int64) (emit, cycles int64) {
			tuples := chunk / tupleBytes
			return chunk / 100, tuples * 60
		},
	}

	// Drain the front-end inbox (the query's result stream).
	k.Spawn("frontend", func(p *sim.Proc) {
		for {
			if _, ok := system.FE.Inbox().Get(p); !ok {
				return
			}
		}
	})

	stats := make([]diskos.DiskletStats, disks)
	done := sim.NewWaitGroup(disks)
	for i := 0; i < disks; i++ {
		i := i
		ad := system.Disks[i]
		k.Spawn(fmt.Sprintf("disklet%d", i), func(p *sim.Proc) {
			stats[i] = ad.RunDisklet(p, selectDisklet,
				diskos.Region{Offset: 0, Length: perDisk},
				diskos.Sink{ToFrontEnd: true})
			done.Done()
		})
	}
	var elapsed sim.Time
	k.Spawn("coord", func(p *sim.Proc) {
		done.Wait(p)
		elapsed = p.Now()
	})
	k.Run()

	var in, out, cycles int64
	for _, s := range stats {
		in += s.BytesIn
		out += s.BytesOut
		cycles += s.Cycles
	}
	fmt.Printf("select disklet on %d Active Disks\n", disks)
	fmt.Printf("  scanned    %6.2f GB at the drives\n", float64(in)/1e9)
	fmt.Printf("  delivered  %6.2f GB to the front-end (%.1fx reduction)\n",
		float64(out)/1e9, float64(in)/float64(out))
	fmt.Printf("  compute    %6.2f Gcycles across %d embedded cores\n", float64(cycles)/1e9, disks)
	fmt.Printf("  elapsed    %v\n", elapsed)
	fmt.Printf("  loop       %.1f%% utilized — the interconnect barely notices\n",
		system.LoopUtilization()*100)
}
