// archcompare: the paper's core comparison for one task — run it on
// Active Disks, a commodity cluster and an SMP disk farm at the same
// size, then fold in the Table 1 prices to get price/performance.
//
// Run with:
//
//	go run ./examples/archcompare            # external sort at 64 disks
//	go run ./examples/archcompare groupby 128
package main

import (
	"fmt"
	"os"
	"strconv"

	"howsim/internal/core"
	"howsim/internal/cost"
	"howsim/internal/tasks"
	"howsim/internal/workload"
)

func main() {
	task := workload.Sort
	disks := 64
	if len(os.Args) > 1 {
		t, err := workload.ParseTask(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		task = t
	}
	if len(os.Args) > 2 {
		n, err := strconv.Atoi(os.Args[2])
		if err != nil || n < 2 {
			fmt.Fprintf(os.Stderr, "bad disk count %q\n", os.Args[2])
			os.Exit(2)
		}
		disks = n
	}

	type entry struct {
		name  string
		cfg   core.Config
		price float64
		res   *tasks.Result
	}
	entries := []entry{
		{"Active Disks", core.ActiveDisks(disks), cost.ActiveDiskTotal(cost.Jul99, disks), nil},
		{"Cluster", core.Cluster(disks), cost.ClusterTotal(cost.Jul99, disks), nil},
		{"SMP", core.SMP(disks), cost.SMPTotal(disks), nil},
	}
	fmt.Printf("%s on %d-disk configurations (full 16-32 GB datasets)\n\n", task, disks)
	for i := range entries {
		entries[i].res = core.New(entries[i].cfg, task).Run()
	}
	base := entries[0].res.Elapsed.Seconds()
	fmt.Printf("%-14s %10s %10s %12s %14s\n", "architecture", "time", "vs active", "price(7/99)", "price x time")
	for _, e := range entries {
		sec := e.res.Elapsed.Seconds()
		fmt.Printf("%-14s %9.1fs %9.2fx %12s %14.3e\n",
			e.name, sec, sec/base, fmt.Sprintf("$%.0f", e.price),
			cost.PricePerformance(e.price, sec))
	}
}
