// timeline: trace one external sort on all three architectures and
// compare where the time goes, phase by phase. Each run executes with
// the observability sink attached, writes a Chrome trace_event JSON
// file (load it in chrome://tracing or https://ui.perfetto.dev to see
// per-disk seek/transfer spans, link occupancy and processor slices),
// and contributes a column to the per-phase comparison table printed at
// the end.
//
// Run with:
//
//	go run ./examples/timeline             # 8 disks, 1% dataset scale
//	go run ./examples/timeline 16 0.05     # 16 disks, 5% scale
//
// Traces land in the working directory as timeline.<arch>.json.
package main

import (
	"fmt"
	"os"
	"strconv"

	"howsim/internal/arch"
	"howsim/internal/probe"
	"howsim/internal/stats"
	"howsim/internal/tasks"
	"howsim/internal/workload"
)

func main() {
	disks, scale := 8, 0.01
	if len(os.Args) > 1 {
		n, err := strconv.Atoi(os.Args[1])
		if err != nil || n < 2 {
			fmt.Fprintf(os.Stderr, "bad disk count %q\n", os.Args[1])
			os.Exit(2)
		}
		disks = n
	}
	if len(os.Args) > 2 {
		f, err := strconv.ParseFloat(os.Args[2], 64)
		if err != nil || f <= 0 || f > 1 {
			fmt.Fprintf(os.Stderr, "bad scale %q\n", os.Args[2])
			os.Exit(2)
		}
		scale = f
	}

	ds := workload.ForTask(workload.Sort)
	ds = ds.Scaled(int64(float64(ds.TotalBytes) * scale))
	archs := []struct {
		name string
		cfg  arch.Config
	}{
		{"active", arch.ActiveDisks(disks)},
		{"cluster", arch.Cluster(disks)},
		{"smp", arch.SMP(disks)},
	}

	fmt.Printf("External sort of %.2f GB on %d disks, traced on all three architectures\n\n",
		float64(ds.TotalBytes)/1e9, disks)

	type phase struct{ name string; dur probe.Time }
	var order []string                    // phase names in first-seen order
	cols := map[string]map[string]string{} // arch -> phase -> rendered cell
	elapsed := map[string]float64{}

	for _, a := range archs {
		sink := probe.NewSink()
		res := tasks.RunDatasetProbed(a.cfg, workload.Sort, ds, nil, sink)
		path := fmt.Sprintf("timeline.%s.json", a.name)
		if err := sink.WriteTraceFile(path); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  %-8s %8.1fs elapsed  -> %s (%d spans)\n",
			a.cfg.Name(), res.Elapsed.Seconds(), path, sink.SpansRecorded())

		var phases []phase
		sink.EachSpan(func(sp probe.Span) {
			if comp, _ := sink.Instance(int(sp.Inst)); comp == "task" {
				phases = append(phases, phase{sink.KindName(sp.Kind), sp.End - sp.Start})
			}
		})
		cells := map[string]string{}
		for _, ph := range phases {
			if _, seen := cells[ph.name]; !seen {
				if !contains(order, ph.name) {
					order = append(order, ph.name)
				}
			}
			cells[ph.name] = fmt.Sprintf("%.1fs (%.0f%%)",
				probe.Seconds(ph.dur), 100*float64(ph.dur)/float64(res.Elapsed))
		}
		cols[a.name] = cells
		elapsed[a.name] = res.Elapsed.Seconds()
	}

	fmt.Println()
	t := &stats.Table{
		Title: "per-phase comparison (share of each run's end-to-end time)",
		Cols:  []string{"phase", "active", "cluster", "smp"},
	}
	for _, name := range order {
		row := []string{name}
		for _, a := range archs {
			cell := cols[a.name][name]
			if cell == "" {
				cell = "-"
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	totals := []string{"(elapsed)"}
	for _, a := range archs {
		totals = append(totals, fmt.Sprintf("%.1fs", elapsed[a.name]))
	}
	t.AddRow(totals...)
	fmt.Print(t.String())
	fmt.Println("\nOpen a trace in chrome://tracing to see the same story span by span:")
	fmt.Println("every disk's seek/rotate/transfer activity, every link's occupancy,")
	fmt.Println("every processor's compute slices, on one zoomable virtual timeline.")
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
