// dssquery: run a real decision-support query through the executable
// engine — the paged storage layer plus the volcano-style operators
// whose structural costs the simulator replays at 16 GB scale.
//
//	SELECT key, SUM(value)
//	FROM   lineitems
//	WHERE  attr < 0.10
//	GROUP  BY key HAVING SUM(value) >= 400
//	ORDER  BY key
//	LIMIT  10
//
// Run with:
//
//	go run ./examples/dssquery
package main

import (
	"fmt"

	"howsim/internal/query"
	"howsim/internal/relational"
	"howsim/internal/storage"
	"howsim/internal/workload"
)

func main() {
	// A scaled instance of the Table 2 group-by distribution.
	ds := workload.ForTask(workload.GroupBy).Scaled(8 << 20)
	recs := workload.GenRecords(ds.Tuples, ds.DistinctGroups, 42)
	table := storage.LoadRecords("lineitems", recs)
	fmt.Printf("loaded %d records into %d pages (%d KB)\n\n",
		table.Records(), table.Pages(), table.Bytes()>>10)

	plan := query.Scan(table).
		Filter("attr < 0.10", func(r workload.Record) bool { return r.Attr < 0.10 }).
		GroupByHaving(relational.AggSum, "SUM >= 400", func(v float64) bool { return v >= 400 }).
		OrderByKey(10_000).
		Limit(10)

	fmt.Println("plan:")
	fmt.Print(plan.Explain())
	fmt.Println()

	rows := plan.Run()
	fmt.Printf("%-12s %s\n", "key", "SUM(value)")
	for _, r := range rows {
		fmt.Printf("%-12d %.2f\n", r.Key, r.Value)
	}
	fmt.Printf("\n%d rows\n", len(rows))

	// The same logical operation the Active Disk `groupby` task
	// simulates at 16 GB: every tuple costs ~GroupByCycles on a 200 MHz
	// embedded core, and only the aggregated groups leave the drive.
	groups := query.Scan(table).GroupBy(relational.AggSum).Run()
	in := table.Bytes()
	out := int64(len(groups)) * 32
	fmt.Printf("\ndata reduction at the disk: %d KB scanned -> %d KB of groups (%.1fx)\n",
		in>>10, out>>10, float64(in)/float64(out))
}
