// sortbreakdown: reproduce the paper's Figure 3 analysis for one
// configuration size — where does the time of the external sort go on
// Active Disks, and does upgrading the disks (Hitachi "Fast Disk") or
// the interconnect (400 MB/s "Fast I/O") help?
//
// Run with:
//
//	go run ./examples/sortbreakdown          # 128 disks, the interesting case
//	go run ./examples/sortbreakdown 16
package main

import (
	"fmt"
	"os"
	"strconv"

	"howsim/internal/core"
	"howsim/internal/tasks"
)

func main() {
	disks := 128
	if len(os.Args) > 1 {
		n, err := strconv.Atoi(os.Args[1])
		if err != nil || n < 2 {
			fmt.Fprintf(os.Stderr, "bad disk count %q\n", os.Args[1])
			os.Exit(2)
		}
		disks = n
	}
	variants := []struct {
		name string
		cfg  core.Config
	}{
		{"base (Cheetah 9LP, 200 MB/s)", core.ActiveDisks(disks)},
		{"Fast Disk (Hitachi DK3E1T-91)", core.ActiveDisks(disks).WithFastDisk()},
		{"Fast I/O (400 MB/s loop)", core.ActiveDisks(disks).WithFastIO()},
	}
	buckets := []string{"P1:Partitioner", "P1:Append", "P1:Sort", "P1:Idle", "P2:Merge", "P2:Idle"}

	fmt.Printf("External sort of 16 GB on %d Active Disks\n\n", disks)
	var results []*tasks.Result
	for _, v := range variants {
		results = append(results, core.New(v.cfg, core.Sort).Run())
	}
	fmt.Printf("%-30s %10s", "variant", "elapsed")
	for _, b := range buckets {
		fmt.Printf(" %14s", b)
	}
	fmt.Println()
	for i, v := range variants {
		r := results[i]
		fmt.Printf("%-30s %9.1fs", v.name, r.Elapsed.Seconds())
		for _, b := range buckets {
			fmt.Printf(" %13.1f%%", 100*r.Breakdown.Fraction(b))
		}
		fmt.Println()
	}
	fmt.Println()
	base := results[0].Elapsed.Seconds()
	fmt.Printf("Fast Disk speedup: %.2fx   Fast I/O speedup: %.2fx\n",
		base/results[1].Elapsed.Seconds(), base/results[2].Elapsed.Seconds())
	fmt.Println("(at 128 disks the interconnect, not the media, is the bottleneck:")
	fmt.Println(" upgrading the disks barely moves the needle, doubling the loop does)")
}
