// designspace: sweep the three Active Disk design knobs the paper
// evaluates — interconnect bandwidth (Figure 2), per-disk memory
// (Figure 4) and communication architecture (Figure 5) — for a chosen
// task, at a reduced dataset scale so the whole sweep runs in seconds.
//
// Run with:
//
//	go run ./examples/designspace            # sort at 1/8 scale
//	go run ./examples/designspace join
package main

import (
	"fmt"
	"os"

	"howsim/internal/core"
	"howsim/internal/workload"
)

const scale = 1.0 / 8

func run(cfg core.Config, task workload.TaskID) float64 {
	return core.New(cfg, task).WithScale(scale).Run().Elapsed.Seconds()
}

func main() {
	task := workload.Sort
	if len(os.Args) > 1 {
		t, err := workload.ParseTask(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		task = t
	}
	fmt.Printf("Design-space sweep for %s (dataset at 1/8 scale)\n\n", task)

	fmt.Println("1. Interconnect bandwidth (64 disks):")
	base := run(core.ActiveDisks(64), task)
	fast := run(core.ActiveDisks(64).WithFastIO(), task)
	fmt.Printf("   200 MB/s: %7.1fs\n   400 MB/s: %7.1fs  (%.2fx)\n\n", base, fast, base/fast)

	fmt.Println("2. Per-disk memory (16 disks):")
	for _, mb := range []int64{32, 64, 128} {
		t := run(core.ActiveDisks(16).WithDiskMemory(mb<<20), task)
		fmt.Printf("   %3d MB:   %7.1fs\n", mb, t)
	}
	fmt.Println()

	fmt.Println("3. Communication architecture (64 disks):")
	direct := run(core.ActiveDisks(64), task)
	relay := run(core.ActiveDisks(64).WithFrontEndOnly(), task)
	fmt.Printf("   disk-to-disk:   %7.1fs\n   front-end only: %7.1fs  (%.2fx slowdown)\n",
		direct, relay, relay/direct)
}
