// Quickstart: simulate the paper's headline scenario — a SQL select
// over a 16 GB relation running as a disklet on an Active Disk farm —
// and watch the execution time fall as drives (and their embedded
// processors) are added.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"howsim/internal/core"
)

func main() {
	fmt.Println("Active Disk select: 268M 64-byte tuples, 1% selectivity")
	fmt.Println("(filtering runs on the drives; only matches cross the interconnect)")
	fmt.Println()
	for _, disks := range []int{16, 32, 64, 128} {
		res := core.New(core.ActiveDisks(disks), core.Select).Run()
		fmt.Printf("  %3d disks: %8.1fs   (%.2f GB over the loop, %.1f%% loop utilization)\n",
			disks,
			res.Elapsed.Seconds(),
			res.Details["loop_bytes"]/1e9,
			res.Details["loop_util"]*100)
	}
	fmt.Println()
	fmt.Println("For comparison, the same scan on an SMP disk farm, where every")
	fmt.Println("byte must cross the shared 200 MB/s Fibre Channel interconnect:")
	fmt.Println()
	for _, disks := range []int{16, 128} {
		res := core.New(core.SMP(disks), core.Select).Run()
		fmt.Printf("  %3d disks: %8.1fs   (FC utilization %.1f%%)\n",
			disks, res.Elapsed.Seconds(), res.Details["fc_util"]*100)
	}
}
