// Command experiments regenerates the paper's evaluation: Table 1,
// Table 2 and Figures 1-5, printed as text tables and bar charts.
//
// Usage:
//
//	experiments                      # everything at full Table 2 scale
//	experiments -only fig3           # one artifact
//	experiments -scale 0.05          # scaled-down datasets (much faster)
//	experiments -sizes 16,64         # subset of configuration sizes
//	experiments -only fig1 -cpuprofile cpu.out -memprofile mem.out
//
// With -faults, the command instead runs one task per architecture under
// the given deterministic fault plan and prints the recovery reports:
//
//	experiments -faults seed=42,media=0.001,fail=3@2s,replica,spare \
//	    -faulttask select -scale 0.05 -sizes 16
//
// Plans compose media errors, latency spikes, silent corruption
// (corrupt=P), straggler drives (straggler=DISK@START+DUR*FACTOR), a
// disk failure with optional replica failover and hot-spare rebuild,
// and interconnect outages; see DESIGN.md "Fault model & recovery".
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"howsim/internal/experiments"
	"howsim/internal/probe"
	"howsim/internal/profiling"
	"howsim/internal/runconfig"
	"howsim/internal/sim"
	"howsim/internal/tasks"
	"howsim/internal/workload"
)

func main() {
	var (
		only     = flag.String("only", "all", "artifact: table1|table2|fig1|fig2|fig3|fig4|fig5|priceperf|fibreswitch|frontend|embedded|straggler|conclusions|all")
		scale    = flag.Float64("scale", 1.0, "dataset scale factor")
		sizesStr = flag.String("sizes", "16,32,64,128", "comma-separated configuration sizes")
		parallel = flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS)")
		faults   = flag.String("faults", "", "fault plan (media/slow/corrupt/straggler/fail/replica/spare/outage); runs the fault experiment instead of the figures")
		ftask    = flag.String("faulttask", "select", "task for the -faults experiment")
		farch     = flag.String("faultarch", "all", "architecture for -faults: active|cluster|smp|all")
		procmode  = flag.String("procmode", "event", "simulator execution mode: event|goroutine|parallel")
		tracePath = flag.String("trace", "", "write Chrome trace JSON: with -only, one per figure run (suffixed per config and task); otherwise one -faulttask run per architecture")
		breakdown = flag.Bool("breakdown", false, "print the utilization/phase breakdown: with -only, per figure run; otherwise one -faulttask run per architecture")
		ringSpans = flag.Int("ring-spans", 1, "span-ring capacity multiplier for probed runs (x 256Ki spans)")
	)
	flag.Parse()

	mode, err := sim.ParseExecMode(*procmode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sim.DefaultExecMode = mode

	var sizes []int
	for _, s := range strings.Split(*sizesStr, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 2 {
			fmt.Fprintf(os.Stderr, "bad size %q\n", s)
			os.Exit(2)
		}
		sizes = append(sizes, n)
	}
	opt := experiments.Options{Scale: *scale, Sizes: sizes, Parallel: *parallel, RingSpans: *ringSpans}

	stop := profiling.Start()
	defer stop()

	if *tracePath != "" || *breakdown {
		if *only == "all" {
			// Legacy single-task probed run on each architecture.
			if err := runProbedExperiment(*tracePath, *breakdown, *faults, *ftask, *farch, sizes[0], *scale, *ringSpans); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			return
		}
		// With -only, the figure driver itself runs probed: every
		// simulation gets a sink and emits its trace/breakdown.
		opt.Trace = *tracePath
		opt.Breakdown = *breakdown
	}

	if *faults != "" {
		if err := runFaultExperiment(*faults, *ftask, *farch, sizes[0], *scale); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}

	want := func(name string) bool { return *only == "all" || *only == name }
	start := time.Now()

	if want("table1") {
		fmt.Println(experiments.RenderTable1(64))
	}
	if want("table2") {
		fmt.Println(experiments.RenderTable2())
	}
	var fig1 *experiments.Figure1
	if want("fig1") || want("priceperf") {
		fig1 = experiments.RunFigure1(opt)
	}
	if want("fig1") {
		fmt.Println(fig1.Render())
	}
	if want("priceperf") {
		size := sizes[len(sizes)-1]
		for _, task := range []workload.TaskID{workload.Select, workload.Sort} {
			fmt.Println(experiments.PricePerformance(fig1, size, task))
		}
	}
	if want("fig2") {
		fmt.Println(experiments.RunFigure2(opt).Render())
	}
	if want("fig3") {
		fmt.Println(experiments.RunFigure3(opt).Render())
	}
	if want("fig4") {
		fmt.Println(experiments.RunFigure4(opt).Render())
	}
	if want("fig5") {
		fmt.Println(experiments.RunFigure5(opt).Render())
	}
	if want("conclusions") {
		fmt.Println(experiments.RenderConclusions(experiments.VerifyConclusions(opt)))
	}
	if want("straggler") {
		fmt.Println(experiments.RunExtensionStraggler(opt).Render())
	}
	if want("embedded") {
		fmt.Println(experiments.RunExtensionEmbeddedCPU(opt).Render())
	}
	if want("frontend") {
		fmt.Println(experiments.RunExtensionFrontEnd(opt).Render())
	}
	if want("fibreswitch") {
		fmt.Println(experiments.RunExtensionFibreSwitch(opt).Render())
	}
	fmt.Fprintf(os.Stderr, "total wall time %v\n", time.Since(start).Round(time.Millisecond))
}

// normalizedSpecs resolves the requested architecture(s) into fully
// validated run specs via the shared runconfig normalizer — the same
// validation howsim and howsimd use, replacing the per-command config
// switch blocks this command used to carry.
func normalizedSpecs(taskName, archName string, size int, scale float64, planStr string) ([]*runconfig.Spec, error) {
	names := runconfig.ArchNames()
	if archName != "all" {
		names = []string{archName}
	}
	specs := make([]*runconfig.Spec, 0, len(names))
	for _, name := range names {
		sp, err := runconfig.Request{
			Task: taskName, Arch: name, Disks: size, Scale: scale, Faults: planStr,
		}.Normalize()
		if err != nil {
			return nil, err
		}
		specs = append(specs, sp)
	}
	return specs, nil
}

// runFaultExperiment runs one task under a deterministic fault plan on
// the requested architecture(s) at the given size and dataset scale, and
// prints each run's recovery report. The report is a pure function of
// (plan, task, configuration, dataset), so repeated invocations print
// byte-identical output.
func runFaultExperiment(planStr, taskName, archName string, size int, scale float64) error {
	specs, err := normalizedSpecs(taskName, archName, size, scale, planStr)
	if err != nil {
		return err
	}
	for _, sp := range specs {
		res := tasks.RunDatasetFaulted(sp.Config, sp.TaskID, sp.Dataset, sp.Plan)
		if res.Fault != nil {
			fmt.Print(res.Fault.Render())
		} else {
			fmt.Printf("fault report: %s on %s\n  plan:          %s\n  status:        completed (no faults injected)\n",
				sp.TaskID, sp.Config.Name(), sp.Req.Faults)
		}
		fmt.Println()
	}
	return nil
}

// runProbedExperiment runs one task on the requested architecture(s)
// with an observability sink attached, writing one Chrome trace per run
// and/or printing the utilization/phase breakdown. An optional fault
// plan is injected into the same probed run, so traces of degraded
// executions come for free. Like the fault experiment, the output is a
// pure function of (plan, task, configuration, dataset): repeated
// invocations produce byte-identical traces and reports.
func runProbedExperiment(tracePath string, breakdown bool, planStr, taskName, archName string, size int, scale float64, ringSpans int) error {
	specs, err := normalizedSpecs(taskName, archName, size, scale, planStr)
	if err != nil {
		return err
	}
	if ringSpans < 1 {
		ringSpans = 1
	}
	for _, sp := range specs {
		sink := probe.NewSinkCap(ringSpans * probe.DefaultRingSpans)
		res := tasks.RunDatasetProbed(sp.Config, sp.TaskID, sp.Dataset, sp.Plan, sink)
		if tracePath != "" {
			path := tracePath
			if len(specs) > 1 {
				path = archSuffixed(tracePath, sp.Req.Arch)
			}
			if err := sink.WriteTraceFile(path); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "trace written to %s (%d spans, %d dropped)\n",
				path, sink.SpansRecorded(), sink.Dropped())
		}
		if breakdown {
			fmt.Print(sink.BuildReport(sp.TaskID.String(), sp.Config.Name(), int64(res.Elapsed)).Render())
			fmt.Println()
		}
		if res.Fault != nil {
			fmt.Print(res.Fault.Render())
			fmt.Println()
		}
	}
	return nil
}

// archSuffixed inserts the architecture name before the path's
// extension: out.json + active -> out.active.json.
func archSuffixed(path, name string) string {
	ext := filepath.Ext(path)
	return strings.TrimSuffix(path, ext) + "." + name + ext
}
