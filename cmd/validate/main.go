// Command validate checks the simulator's component models against
// their published specifications and analytic expectations, the way the
// original DiskSim and Netsim were validated ("DiskSim has been
// validated against several disk drives using the published disk
// specifications"; "Netsim has been validated using a set of
// microbenchmarks ... yielding 2-6% accuracy"). Exit status is nonzero
// if any check falls outside its tolerance.
package main

import (
	"fmt"
	"os"

	"howsim/internal/bus"
	"howsim/internal/cpu"
	"howsim/internal/disk"
	"howsim/internal/netsim"
	"howsim/internal/sim"
)

type check struct {
	name      string
	measured  float64
	expected  float64
	unit      string
	tolerance float64 // relative
}

func (c check) ok() bool {
	if c.expected == 0 {
		return c.measured == 0
	}
	rel := (c.measured - c.expected) / c.expected
	if rel < 0 {
		rel = -rel
	}
	return rel <= c.tolerance
}

func main() {
	var checks []check

	// --- Disk model vs Seagate ST39102 specification -----------------
	spec := disk.Cheetah9LP()
	checks = append(checks, check{
		name: "disk capacity", unit: "GB", tolerance: 0.05,
		measured: float64(spec.CapacityBytes()) / 1e9, expected: 9.1,
	})
	checks = append(checks, check{
		name: "outer-zone media rate", unit: "MB/s", tolerance: 0.02,
		measured: spec.MaxMediaRate() / 1e6, expected: 21.3,
	})
	checks = append(checks, check{
		name: "inner-zone media rate", unit: "MB/s", tolerance: 0.02,
		measured: spec.MinMediaRate() / 1e6, expected: 14.5,
	})
	checks = append(checks, check{
		name: "sequential read throughput", unit: "MB/s", tolerance: 0.06,
		measured: seqReadRate() / 1e6, expected: spec.MaxMediaRate() / 1e6,
	})
	checks = append(checks, check{
		name: "random 8KB read service", unit: "ms", tolerance: 0.35,
		measured: randomReadMs(),
		// avg seek + half rotation + transfer + controller overhead
		expected: spec.AvgSeekRead.Milliseconds() + spec.RotationPeriod().Milliseconds()/2 + 0.8,
	})

	// --- Interconnect models ------------------------------------------
	checks = append(checks, check{
		name: "dual FC-AL aggregate bandwidth", unit: "MB/s", tolerance: 0.02,
		measured: fcalAggregate() / 1e6, expected: 200,
	})

	// --- Network model -------------------------------------------------
	checks = append(checks, check{
		name: "cluster NIC point-to-point", unit: "MB/s", tolerance: 0.05,
		measured: p2pRate() / 1e6, expected: 11.7,
	})
	checks = append(checks, check{
		name: "small-message latency", unit: "us", tolerance: 0.3,
		measured: p2pLatencyUS(),
		// two 1 KB serializations at 11.7 MB/s plus two 10 us hops
		expected: 2*(1024.0/11.7e6*1e6) + 20,
	})

	// --- Processor model -----------------------------------------------
	checks = append(checks, check{
		name: "200 MHz cycle accounting", unit: "s", tolerance: 0.001,
		measured: cpuSecondsFor(200e6, 200e6), expected: 1.0,
	})

	fail := 0
	fmt.Printf("%-32s %12s %12s %8s  %s\n", "check", "measured", "expected", "tol", "status")
	for _, c := range checks {
		status := "ok"
		if !c.ok() {
			status = "FAIL"
			fail++
		}
		fmt.Printf("%-32s %9.2f %s %9.2f %s %7.0f%%  %s\n",
			c.name, c.measured, c.unit, c.expected, c.unit, c.tolerance*100, status)
	}
	if fail > 0 {
		fmt.Fprintf(os.Stderr, "%d validation checks failed\n", fail)
		os.Exit(1)
	}
	fmt.Println("all component models within tolerance")
}

func seqReadRate() float64 {
	k := sim.NewKernel()
	d := disk.New(k, "d", disk.Cheetah9LP())
	const total = 64 << 20
	var elapsed sim.Time
	k.Spawn("r", func(p *sim.Proc) {
		start := p.Now()
		for off := int64(0); off < total; off += 256 << 10 {
			d.Read(p, off, 256<<10)
		}
		elapsed = p.Now() - start
	})
	k.Run()
	return float64(total) / elapsed.Seconds()
}

func randomReadMs() float64 {
	k := sim.NewKernel()
	d := disk.New(k, "d", disk.Cheetah9LP())
	const n = 256
	var elapsed sim.Time
	k.Spawn("r", func(p *sim.Proc) {
		start := p.Now()
		slots := d.Capacity() / (8 << 10)
		for j := int64(0); j < n; j++ {
			off := j * 2654435761 % slots * (8 << 10)
			d.Read(p, off, 8<<10)
		}
		elapsed = p.Now() - start
	})
	k.Run()
	return (elapsed / n).Milliseconds()
}

func fcalAggregate() float64 {
	k := sim.NewKernel()
	fc := bus.NewFCAL(k, "fc", 2, 100e6)
	const each = 100 << 20
	var last sim.Time
	for i := 0; i < 4; i++ {
		k.Spawn("s", func(p *sim.Proc) {
			fc.Transfer(p, each)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	k.Run()
	return float64(4*each) / last.Seconds()
}

func buildNet() (*sim.Kernel, *netsim.Network) {
	k := sim.NewKernel()
	n := netsim.New(k, 0)
	ft := netsim.NewFatTree(n, 4, netsim.DefaultFatTreeConfig())
	n.SetTopology(ft)
	return k, n
}

func p2pRate() float64 {
	k, n := buildNet()
	const bytes = 64 << 20
	var m *netsim.Message
	k.Spawn("s", func(p *sim.Proc) {
		m = n.Send(p, 0, 1, 0, bytes, nil)
		m.Wait(p)
	})
	k.Run()
	return float64(bytes) / (m.DeliveredAt - m.SentAt).Seconds()
}

func p2pLatencyUS() float64 {
	k, n := buildNet()
	var m *netsim.Message
	k.Spawn("s", func(p *sim.Proc) {
		m = n.Send(p, 0, 1, 0, 1024, nil)
		m.Wait(p)
	})
	k.Run()
	return float64(m.DeliveredAt-m.SentAt) / 1000
}

func cpuSecondsFor(cycles int64, hz float64) float64 {
	k := sim.NewKernel()
	c := cpu.New(k, "c", hz)
	var elapsed sim.Time
	k.Spawn("w", func(p *sim.Proc) {
		start := p.Now()
		c.Compute(p, cycles)
		elapsed = p.Now() - start
	})
	k.Run()
	return elapsed.Seconds()
}
