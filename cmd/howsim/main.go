// Command howsim runs one decision-support task on one simulated
// architecture and reports the execution time, per-phase breakdown and
// resource statistics.
//
// Usage:
//
//	howsim -task sort -arch active -disks 64 [-fastio] [-mem 64]
//	       [-feonly] [-fastdisk] [-scale 0.01]
//	       [-faults seed=42,media=0.001,corrupt=0.001,fail=3@2s,replica,spare]
//	       [-trace out.json] [-breakdown]
//	       [-cpuprofile cpu.out] [-memprofile mem.out]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"howsim/internal/arch"
	"howsim/internal/probe"
	"howsim/internal/profiling"
	"howsim/internal/runconfig"
	"howsim/internal/tasks"
)

func main() {
	var req runconfig.Request
	flag.StringVar(&req.Task, "task", runconfig.DefaultTask, "task: select|aggregate|groupby|sort|dcube|join|dmine|mview")
	flag.StringVar(&req.Arch, "arch", runconfig.DefaultArch, "architecture: active|cluster|smp")
	flag.IntVar(&req.Disks, "disks", runconfig.DefaultDisks, "number of disks (and processors)")
	flag.BoolVar(&req.FastIO, "fastio", false, "400 MB/s serial interconnect (Active/SMP)")
	flag.Int64Var(&req.MemMB, "mem", runconfig.DefaultMemMB, "Active Disk memory per drive, MB (32/64/128)")
	flag.BoolVar(&req.FrontEndOnly, "feonly", false, "restrict Active Disk communication to the front-end")
	flag.BoolVar(&req.FastDisk, "fastdisk", false, "upgrade drives to the Hitachi DK3E1T-91")
	flag.IntVar(&req.FibreSwitch, "fibreswitch", 0, "split the Active Disk farm across N switched loops (0 = single loop)")
	flag.Float64Var(&req.Scale, "scale", runconfig.DefaultScale, "dataset scale factor (1.0 = full Table 2 size)")
	flag.StringVar(&req.Faults, "faults", "", "fault plan, e.g. seed=42,media=0.001,corrupt=0.001,straggler=2@1s+500ms*4,fail=3@2s,replica,spare")
	flag.StringVar(&req.ProcMode, "procmode", runconfig.DefaultProcMode, "simulator execution mode: event|goroutine|parallel")
	flag.IntVar(&req.RingSpans, "ring-spans", runconfig.DefaultRingSpans, "span-ring capacity multiplier for -trace/-breakdown (x 256Ki spans)")
	var (
		sweep     = flag.Bool("sweep", false, "run the task across 16/32/64/128 disks and print a scaling table")
		tracePath = flag.String("trace", "", "write a Chrome trace_event JSON timeline to this file")
		breakdown = flag.Bool("breakdown", false, "print the utilization/phase breakdown report")
	)
	flag.Parse()
	req.Breakdown = *breakdown

	sp, err := req.Normalize()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	stop := profiling.Start()
	defer stop()

	if *sweep {
		fmt.Printf("%s on %s, %0.2f GB dataset: scaling sweep\n\n",
			sp.TaskID, sp.Req.Arch, float64(sp.Dataset.TotalBytes)/1e9)
		fmt.Printf("%8s %12s %10s\n", "disks", "elapsed", "speedup")
		var base float64
		for _, n := range arch.StudiedSizes() {
			c := sp.Config
			c.Disks = n
			r, err := tasks.RunCtx(context.Background(), c, sp.TaskID, sp.Dataset, nil, nil, sp.Mode)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if base == 0 {
				base = r.Elapsed.Seconds()
			}
			fmt.Printf("%8d %11.1fs %9.2fx\n", n, r.Elapsed.Seconds(), base/r.Elapsed.Seconds())
		}
		return
	}

	var sink *probe.Sink
	if *tracePath != "" || *breakdown {
		sink = probe.NewSinkCap(sp.Req.RingSpans * probe.DefaultRingSpans)
	}
	res, err := tasks.RunCtx(context.Background(), sp.Config, sp.TaskID, sp.Dataset, sp.Plan, sink, sp.Mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *tracePath != "" {
		if err := sink.WriteTraceFile(*tracePath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s (%d spans, %d dropped)\n",
			*tracePath, sink.SpansRecorded(), sink.Dropped())
	}

	ds := sp.Dataset
	fmt.Printf("task       %s\n", sp.TaskID)
	fmt.Printf("config     %s\n", sp.Config.Name())
	fmt.Printf("dataset    %.2f GB (%d tuples of %d bytes)\n",
		float64(ds.TotalBytes)/1e9, ds.Tuples, ds.TupleBytes)
	fmt.Printf("elapsed    %v\n", res.Elapsed)
	if names := res.Breakdown.Names(); len(names) > 0 {
		fmt.Println("breakdown:")
		for _, n := range names {
			fmt.Printf("  %-16s %6.1f%%  %v\n", n, 100*res.Breakdown.Fraction(n), res.Breakdown.Get(n))
		}
	}
	keys := make([]string, 0, len(res.Details))
	for k := range res.Details {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Println("details:")
	for _, k := range keys {
		fmt.Printf("  %-24s %g\n", k, res.Details[k])
	}
	if res.Fault != nil {
		fmt.Print(res.Fault.Render())
	}
	if *breakdown {
		fmt.Println()
		fmt.Print(sink.BuildReport(sp.TaskID.String(), sp.Config.Name(), int64(res.Elapsed)).Render())
	}
}
