// Command howsim runs one decision-support task on one simulated
// architecture and reports the execution time, per-phase breakdown and
// resource statistics.
//
// Usage:
//
//	howsim -task sort -arch active -disks 64 [-fastio] [-mem 64]
//	       [-feonly] [-fastdisk] [-scale 0.01]
//	       [-faults seed=42,media=0.001,corrupt=0.001,fail=3@2s,replica,spare]
//	       [-trace out.json] [-breakdown]
//	       [-cpuprofile cpu.out] [-memprofile mem.out]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"howsim/internal/arch"
	"howsim/internal/fault"
	"howsim/internal/probe"
	"howsim/internal/profiling"
	"howsim/internal/sim"
	"howsim/internal/tasks"
	"howsim/internal/workload"
)

func main() {
	var (
		taskName = flag.String("task", "select", "task: select|aggregate|groupby|sort|dcube|join|dmine|mview")
		archName = flag.String("arch", "active", "architecture: active|cluster|smp")
		disks    = flag.Int("disks", 16, "number of disks (and processors)")
		fastIO   = flag.Bool("fastio", false, "400 MB/s serial interconnect (Active/SMP)")
		memMB    = flag.Int64("mem", 32, "Active Disk memory per drive, MB (32/64/128)")
		feOnly   = flag.Bool("feonly", false, "restrict Active Disk communication to the front-end")
		fastDisk = flag.Bool("fastdisk", false, "upgrade drives to the Hitachi DK3E1T-91")
		fsw      = flag.Int("fibreswitch", 0, "split the Active Disk farm across N switched loops (0 = single loop)")
		scale    = flag.Float64("scale", 1.0, "dataset scale factor (1.0 = full Table 2 size)")
		sweep    = flag.Bool("sweep", false, "run the task across 16/32/64/128 disks and print a scaling table")
		faults    = flag.String("faults", "", "fault plan, e.g. seed=42,media=0.001,corrupt=0.001,straggler=2@1s+500ms*4,fail=3@2s,replica,spare")
		procmode  = flag.String("procmode", "event", "simulator execution mode: event|goroutine|parallel")
		tracePath = flag.String("trace", "", "write a Chrome trace_event JSON timeline to this file")
		breakdown = flag.Bool("breakdown", false, "print the utilization/phase breakdown report")
		ringSpans = flag.Int("ring-spans", 1, "span-ring capacity multiplier for -trace/-breakdown (x 256Ki spans)")
	)
	flag.Parse()

	mode, err := sim.ParseExecMode(*procmode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sim.DefaultExecMode = mode

	plan, err := fault.ParsePlan(*faults)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	task, err := workload.ParseTask(*taskName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var cfg arch.Config
	switch *archName {
	case "active":
		cfg = arch.ActiveDisks(*disks).WithDiskMemory(*memMB << 20)
		if *feOnly {
			cfg = cfg.WithFrontEndOnly()
		}
		if *fsw > 1 {
			cfg = cfg.WithFibreSwitch(*fsw)
		}
	case "cluster":
		cfg = arch.Cluster(*disks)
	case "smp":
		cfg = arch.SMP(*disks)
	default:
		fmt.Fprintf(os.Stderr, "unknown architecture %q\n", *archName)
		os.Exit(2)
	}
	if *fastIO {
		cfg = cfg.WithFastIO()
	}
	if *fastDisk {
		cfg = cfg.WithFastDisk()
	}

	ds := workload.ForTask(task)
	if *scale < 1.0 {
		ds = ds.Scaled(int64(float64(ds.TotalBytes) * *scale))
	}

	stop := profiling.Start()
	defer stop()

	if *sweep {
		fmt.Printf("%s on %s, %0.2f GB dataset: scaling sweep\n\n", task, *archName, float64(ds.TotalBytes)/1e9)
		fmt.Printf("%8s %12s %10s\n", "disks", "elapsed", "speedup")
		var base float64
		for _, n := range arch.StudiedSizes() {
			c := cfg
			c.Disks = n
			r := tasks.RunDataset(c, task, ds)
			if base == 0 {
				base = r.Elapsed.Seconds()
			}
			fmt.Printf("%8d %11.1fs %9.2fx\n", n, r.Elapsed.Seconds(), base/r.Elapsed.Seconds())
		}
		return
	}

	var sink *probe.Sink
	if *tracePath != "" || *breakdown {
		if *ringSpans < 1 {
			*ringSpans = 1
		}
		sink = probe.NewSinkCap(*ringSpans * probe.DefaultRingSpans)
	}
	res := tasks.RunDatasetProbed(cfg, task, ds, plan, sink)
	if *tracePath != "" {
		if err := sink.WriteTraceFile(*tracePath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s (%d spans, %d dropped)\n",
			*tracePath, sink.SpansRecorded(), sink.Dropped())
	}

	fmt.Printf("task       %s\n", task)
	fmt.Printf("config     %s\n", cfg.Name())
	fmt.Printf("dataset    %.2f GB (%d tuples of %d bytes)\n",
		float64(ds.TotalBytes)/1e9, ds.Tuples, ds.TupleBytes)
	fmt.Printf("elapsed    %v\n", res.Elapsed)
	if names := res.Breakdown.Names(); len(names) > 0 {
		fmt.Println("breakdown:")
		for _, n := range names {
			fmt.Printf("  %-16s %6.1f%%  %v\n", n, 100*res.Breakdown.Fraction(n), res.Breakdown.Get(n))
		}
	}
	keys := make([]string, 0, len(res.Details))
	for k := range res.Details {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Println("details:")
	for _, k := range keys {
		fmt.Printf("  %-24s %g\n", k, res.Details[k])
	}
	if res.Fault != nil {
		fmt.Print(res.Fault.Render())
	}
	if *breakdown {
		fmt.Println()
		fmt.Print(sink.BuildReport(task.String(), cfg.Name(), int64(res.Elapsed)).Render())
	}
}
