// Command workload inspects the Table 2 datasets and exercises the
// synthetic generators, printing distribution statistics for a scaled
// instance of any task's input.
//
// Usage:
//
//	workload                 # print Table 2
//	workload -task dmine -sample 100000 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"howsim/internal/experiments"
	"howsim/internal/workload"
)

func main() {
	var (
		taskName = flag.String("task", "", "generate a sample for this task (empty = just print Table 2)")
		sample   = flag.Int64("sample", 100_000, "sample size (tuples/transactions)")
		seed     = flag.Uint64("seed", 1, "generator seed")
	)
	flag.Parse()

	fmt.Println(experiments.RenderTable2())
	if *taskName == "" {
		return
	}
	task, err := workload.ParseTask(*taskName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	ds := workload.ForTask(task)
	fmt.Printf("sample of %d for %s (seed %d):\n", *sample, task, *seed)
	switch task {
	case workload.Select, workload.Aggregate, workload.GroupBy:
		distinct := ds.DistinctGroups
		if distinct == 0 || distinct > *sample {
			distinct = *sample / 20
		}
		recs := workload.GenRecords(*sample, distinct, *seed)
		keys := map[uint64]bool{}
		selected := 0
		sum := 0.0
		for _, r := range recs {
			keys[r.Key] = true
			sum += r.Value
			if r.Attr < ds.Selectivity {
				selected++
			}
		}
		fmt.Printf("  records   %d\n  distinct  %d\n  sum       %.1f\n", len(recs), len(keys), sum)
		if ds.Selectivity > 0 {
			fmt.Printf("  selected  %d (%.2f%%)\n", selected, 100*float64(selected)/float64(len(recs)))
		}
	case workload.Sort:
		keys := workload.GenSortKeys(*sample, *seed)
		var min, max uint64 = ^uint64(0), 0
		for _, k := range keys {
			if k < min {
				min = k
			}
			if k > max {
				max = k
			}
		}
		fmt.Printf("  keys      %d\n  min       %d\n  max       %d\n", len(keys), min, max)
	case workload.DataCube:
		tuples := workload.GenCube(*sample, ds.CubeDims, *seed)
		for d := 0; d < 4; d++ {
			seen := map[uint32]bool{}
			for _, tp := range tuples {
				seen[tp.Dims[d]] = true
			}
			fmt.Printf("  dim %d     %d distinct values\n", d, len(seen))
		}
	case workload.Join:
		r, s := workload.GenJoin(*sample/4, *sample, *seed)
		fmt.Printf("  R tuples  %d (unique keys)\n  S tuples  %d (foreign keys)\n", len(r), len(s))
	case workload.DataMine:
		txns := workload.GenTxns(*sample, ds.Items/1000, ds.AvgItemsPerTxn, *seed)
		total := 0
		for _, t := range txns {
			total += len(t)
		}
		fmt.Printf("  txns      %d\n  avg items %.2f\n", len(txns), float64(total)/float64(len(txns)))
	case workload.MView:
		deltas := workload.GenDeltas(*sample, *sample/20, *seed)
		ins := 0
		for _, d := range deltas {
			if d.Insert {
				ins++
			}
		}
		fmt.Printf("  deltas    %d (%d inserts, %d deletes)\n", len(deltas), ins, len(deltas)-ins)
	}
}
