// Command howsimvet is the simulator's invariant checker: a
// go/analysis vettool bundling the determinism and dual-mode execution
// safety rules from internal/analysis (nowallclock, norandglobal,
// sortedrange, noblockincallback, proberef) plus the v2 concurrency
// and shard-safety rules (lockguard, atomiconly, shardsafe,
// ctxdiscipline).
//
// Three ways to run it:
//
//	go vet -vettool=$(which howsimvet) ./...   # the vet protocol
//	howsimvet ./...                            # standalone; re-execs go vet
//	howsimvet -allows [dir]                    # audit the //howsim:allow table
//
// `make lint` builds it and runs the second form over the whole repo;
// the third prints every reviewed exemption in production code as a
// file:line / analyzer / reason table (stale entries are themselves
// findings in the first two forms, so the table can't rot).
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"
	"text/tabwriter"

	"golang.org/x/tools/go/analysis/unitchecker"

	hsanalysis "howsim/internal/analysis"
	"howsim/internal/analysis/allow"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "-allows" {
		os.Exit(runAllows(os.Args[2:]))
	}
	if patterns := standalonePatterns(os.Args[1:]); patterns != nil {
		os.Exit(runStandalone(patterns))
	}
	unitchecker.Main(hsanalysis.Analyzers()...)
}

// runAllows prints the exemption audit: every //howsim:allow directive
// under the given root (default ".") with its analyzer and reason.
func runAllows(args []string) int {
	root := "."
	if len(args) > 0 {
		root = args[0]
	}
	recs, err := allow.ScanDir(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "howsimvet:", err)
		return 1
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "FILE:LINE\tANALYZER\tREASON")
	for _, r := range recs {
		reason := r.Reason
		if reason == "" {
			reason = "(none given)"
		}
		fmt.Fprintf(tw, "%s:%d\t%s\t%s\n", r.File, r.Line, r.Analyzer, reason)
	}
	tw.Flush()
	fmt.Printf("%d directive(s)\n", len(recs))
	return 0
}

// standalonePatterns decides how we were invoked. Under `go vet
// -vettool` every argument is either a flag (-V=full, -flags) or a
// *.cfg file; anything else — package patterns like ./... — means a
// human ran us directly and wants the standalone mode.
func standalonePatterns(args []string) []string {
	var patterns []string
	for _, a := range args {
		if strings.HasPrefix(a, "-") || strings.HasSuffix(a, ".cfg") {
			return nil
		}
		patterns = append(patterns, a)
	}
	return patterns
}

// runStandalone re-execs `go vet -vettool=<self> <patterns>`, which
// hands the package loading, export data and facts plumbing to the go
// command and feeds each package back to this binary via the
// unitchecker protocol.
func runStandalone(patterns []string) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "howsimvet:", err)
		return 1
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintln(os.Stderr, "howsimvet:", err)
		return 1
	}
	return 0
}
