// Command howsimvet is the simulator's invariant checker: a
// go/analysis vettool bundling the determinism and dual-mode execution
// safety rules from internal/analysis (nowallclock, norandglobal,
// sortedrange, noblockincallback, proberef).
//
// Two ways to run it:
//
//	go vet -vettool=$(which howsimvet) ./...   # the vet protocol
//	howsimvet ./...                            # standalone; re-execs go vet
//
// `make lint` builds it and runs the second form over the whole repo.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	hsanalysis "howsim/internal/analysis"
)

func main() {
	if patterns := standalonePatterns(os.Args[1:]); patterns != nil {
		os.Exit(runStandalone(patterns))
	}
	unitchecker.Main(hsanalysis.Analyzers()...)
}

// standalonePatterns decides how we were invoked. Under `go vet
// -vettool` every argument is either a flag (-V=full, -flags) or a
// *.cfg file; anything else — package patterns like ./... — means a
// human ran us directly and wants the standalone mode.
func standalonePatterns(args []string) []string {
	var patterns []string
	for _, a := range args {
		if strings.HasPrefix(a, "-") || strings.HasSuffix(a, ".cfg") {
			return nil
		}
		patterns = append(patterns, a)
	}
	return patterns
}

// runStandalone re-execs `go vet -vettool=<self> <patterns>`, which
// hands the package loading, export data and facts plumbing to the go
// command and feeds each package back to this binary via the
// unitchecker protocol.
func runStandalone(patterns []string) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "howsimvet:", err)
		return 1
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintln(os.Stderr, "howsimvet:", err)
		return 1
	}
	return 0
}
