// Command costmodel prints the paper's Table 1 cost analysis for any
// configuration size, plus the Active/cluster/SMP price comparison.
//
// Usage:
//
//	costmodel            # 64-node configurations, as in the paper
//	costmodel -disks 128
package main

import (
	"flag"
	"fmt"

	"howsim/internal/cost"
	"howsim/internal/experiments"
)

func main() {
	disks := flag.Int("disks", 64, "configuration size")
	flag.Parse()

	fmt.Println(experiments.RenderTable1(*disks))
	fmt.Printf("Price ratios at %d disks:\n", *disks)
	for _, d := range cost.Dates() {
		a := cost.ActiveDiskTotal(d, *disks)
		c := cost.ClusterTotal(d, *disks)
		s := cost.SMPTotal(*disks)
		fmt.Printf("  %-6s Active/Cluster = %.2f   SMP/Active = %.1fx\n", d, a/c, s/a)
	}
}
