// Command howsimd serves the simulator as a long-running what-if
// service: POST a config to /v1/simulate and get the deterministic
// result as JSON. Identical requests share one cached result,
// concurrent identical requests share one run, and a bounded worker
// pool rejects overload with 429 instead of queueing without bound.
//
// Usage:
//
//	howsimd [-addr :8080] [-workers 2] [-queue 16] [-cache 256]
//	        [-timeout 120s] [-max-ring-spans 32] [-max-disks 4096]
//	        [-max-scale 1.0] [-drain 30s]
//
// Endpoints:
//
//	POST /v1/simulate   one run; body is a runconfig.Request JSON object
//	POST /v1/sweep      one config across system sizes (default 16..128)
//	GET  /healthz       ok | draining
//	GET  /statsz        counters, gauges, latency histograms (text)
//
// SIGINT/SIGTERM triggers a graceful drain: the listener stops,
// in-flight requests finish (bounded by -drain), then the pool exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"howsim/internal/runconfig"
	"howsim/internal/service"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", service.DefaultWorkers, "concurrent simulations")
		queue   = flag.Int("queue", service.DefaultQueueDepth, "admission queue depth (full queue => 429)")
		cache   = flag.Int("cache", service.DefaultCacheEntries, "result cache entries")
		timeout = flag.Duration("timeout", service.DefaultTimeout, "per-simulation wall-clock budget (0 = none)")
		spans   = flag.Int("max-ring-spans", runconfig.MaxRingSpans, "per-request ring_spans budget")
		disks   = flag.Int("max-disks", runconfig.MaxDisks, "per-request disks budget")
		scale   = flag.Float64("max-scale", service.DefaultMaxScale, "per-request dataset scale budget")
		drain   = flag.Duration("drain", 30*time.Second, "graceful shutdown budget for in-flight requests")
	)
	flag.Parse()

	svc := service.New(service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cache,
		RequestTimeout: *timeout,
		MaxRingSpans:   *spans,
		MaxDisks:       *disks,
		MaxScale:       *scale,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: svc.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "howsimd listening on %s (workers=%d queue=%d cache=%d timeout=%v)\n",
		*addr, *workers, *queue, *cache, *timeout)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "howsimd: %v, draining\n", sig)
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Stop the listener and let in-flight handlers finish, then drain
	// the worker pool (queued jobs complete; handler-less runs are
	// reaped by the service's final context cancel).
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "howsimd: shutdown:", err)
	}
	svc.Close()
	fmt.Fprintln(os.Stderr, "howsimd: drained")
}
